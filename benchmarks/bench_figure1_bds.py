"""FIG1 -- Figure 1: the two factorizations of BDS.

Upsilon_BDS preprocesses the graph (one PTIME search) and answers order
queries in O(log n); Upsilon' preprocesses nothing and pays a full search
per query.  The paper's figure is a diagram; the reproduced artifact is the
measured dichotomy between the two columns.
"""

from conftest import bench_size, bench_sizes, format_table

from repro.core import CostTracker
from repro.queries import (
    bds_query_class,
    no_preprocessing_scheme,
    position_dict_scheme,
    position_index_scheme,
)

SIZES = bench_sizes(8, 13)
SEED = 20130826
QUERIES = 32


def test_fig1_shape_two_factorizations(benchmark, experiment_report):
    query_class = bds_query_class()
    indexed = position_index_scheme()

    def run():
        rows = []
        for size in SIZES:
            data, queries = query_class.sample_workload(size, SEED, QUERIES)
            prep_tracker = CostTracker()
            preprocessed = indexed.preprocess(data, prep_tracker)
            per_query_indexed = CostTracker()
            per_query_naive = CostTracker()
            for query in queries:
                indexed.answer(preprocessed, query, per_query_indexed)
                # Upsilon': the whole instance is the query; replay the search.
                query_class.evaluate(data, query, per_query_naive)
            rows.append(
                (
                    size,
                    prep_tracker.work,
                    per_query_indexed.work // QUERIES,
                    per_query_naive.work // QUERIES,
                    f"{per_query_naive.work / max(per_query_indexed.work, 1):.0f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    experiment_report(
        "FIG1 (Figure 1): BDS under Upsilon_BDS (preprocess G) vs Upsilon' (nothing)",
        format_table(
            ["|G| (vertices)", "prep work (once)", "query work (indexed)", "query work (replay)", "gap"],
            rows,
        ),
    )
    # The gap must grow with |G| (replay is Theta(n + m), probe is O(log n)).
    first_gap = rows[0][3] / max(rows[0][2], 1)
    last_gap = rows[-1][3] / max(rows[-1][2], 1)
    assert last_gap > 4 * first_gap


def test_fig1_wallclock_indexed_query(benchmark):
    query_class = bds_query_class()
    data, queries = query_class.sample_workload(bench_size(11), SEED, QUERIES)
    scheme = position_index_scheme()
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])


def test_fig1_wallclock_dict_query(benchmark):
    query_class = bds_query_class()
    data, queries = query_class.sample_workload(bench_size(11), SEED, QUERIES)
    scheme = position_dict_scheme()
    preprocessed = scheme.preprocess(data, CostTracker())
    benchmark(lambda: [scheme.answer(preprocessed, q, CostTracker()) for q in queries])


def test_fig1_wallclock_replay_query(benchmark):
    query_class = bds_query_class()
    data, queries = query_class.sample_workload(bench_size(11), SEED, 4)
    benchmark(lambda: [query_class.evaluate(data, q, CostTracker()) for q in queries])


def test_fig1_wallclock_preprocessing(benchmark):
    query_class = bds_query_class()
    data, _ = query_class.sample_workload(bench_size(11), SEED, 1)
    scheme = position_index_scheme()
    benchmark(lambda: scheme.preprocess(data, CostTracker()))
