"""Chaos soaks: fault plans interleaved with the PR 3 stateful oracles.

The trust argument of the whole fault-injection subsystem: with a
probability-thinned :class:`~repro.service.faults.FaultPlan` armed --
corrupt reads, full disks, crashing ``apply_delta``, eviction storms --
every answer a mutable handle gives over a 520-step random walk must still
be **correct against a brute-force oracle**, explicitly marked degraded, or
a loud :class:`~repro.core.errors.ReproError`.  Never silently wrong.

Two layers, mirroring ``tests/property/test_prop_mutable.py``:

* deterministic 520-step soaks per delta-capable kind (seeded through
  ``stable_seed`` + ``CHAOS_SEED``, so the CI chaos job replays three
  distinct fault schedules), and
* a Hypothesis :class:`RuleBasedStateMachine` whose rules *arm and disarm
  random scenarios mid-walk*, checking the oracle after every step.
"""

from __future__ import annotations

import os
import random
import tempfile

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.core.errors import ReproError
from repro.core.query import stable_seed
from repro.graphs.graph import Digraph
from repro.graphs.traversal import is_reachable
from repro.incremental.changes import ChangeKind, EdgeChange, PointWrite, TupleChange
from repro.queries import (
    btree_point_scheme,
    closure_scheme,
    fischer_heun_scheme,
    membership_class,
    point_selection_class,
    rmq_class,
    reachability_class,
    sorted_run_scheme,
    threshold_algorithm_scheme,
    topk_class,
)
from repro.service import faults
from repro.service.artifacts import ArtifactStore
from repro.service.engine import QueryEngine
from repro.service.faults import FaultPlan, FaultSpec, RecoveryPolicy, scenario
from repro.storage.relation import Relation
from repro.storage.schema import AttributeType, Schema

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

#: Matches the PR 3 acceptance bar: 500+ steps per kind, under faults.
SOAK_STEPS = 520

#: Millisecond-scale retries so injected failures cost time, not minutes.
SOAK_POLICY = RecoveryPolicy(
    writebehind_attempts=2,
    writebehind_backoff_seconds=0.0005,
    slow_shard_seconds=0.002,
    slow_load_seconds=0.002,
)

MACHINE_SETTINGS = settings(
    max_examples=10,
    stateful_step_count=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def _insert(*row):
    return TupleChange(ChangeKind.INSERT, tuple(row))


def _delete(*row):
    return TupleChange(ChangeKind.DELETE, tuple(row))


def _relation_of(rows):
    relation = Relation(Schema("R", [("a", AttributeType.INT), ("b", AttributeType.INT)]))
    for row in rows:
        relation.insert(row)
    return relation


def _rmq_oracle(array, i, j, p):
    return min(range(i, j + 1), key=lambda k: (array[k], k)) == p


def _topk_oracle(rows, weights, k, theta):
    aggregates = sorted(
        (sum(w * v for w, v in zip(weights, row)) for row in rows), reverse=True
    )
    return aggregates[min(k, len(aggregates)) - 1] >= theta


def _chaos_plan(label: str) -> FaultPlan:
    """The standard soak storm: every monolithic-path site, thinned so most
    steps are clean and recovery interleaves with normal serving."""
    return FaultPlan(
        [
            FaultSpec("store.read", "corrupt", times=None, probability=0.05),
            FaultSpec("store.write", "disk-full", times=None, probability=0.05),
            FaultSpec("mutable.delta", "raise", times=None, probability=0.08),
            FaultSpec("cache.put", "evict-storm", times=None, probability=0.25, storm_size=2),
        ],
        seed=CHAOS_SEED,
        policy=SOAK_POLICY,
        name=f"chaos-soak-{label}",
    )


def _check(handle, query, expected) -> None:
    """Correct, explicitly degraded, or loudly raised -- never silently wrong."""
    try:
        answer = handle.query(query)
    except ReproError:
        return  # a loud failure is an allowed outcome under injection
    if getattr(answer, "partial", False):
        return  # explicitly marked degraded
    assert bool(answer) == bool(expected)


def _finish(engine, handle, plan) -> None:
    """Disarm, then prove the stack healed: flush durably, faults fired."""
    faults.clear_fault_plan()
    handle.flush()  # clean store: any stored write-behind error must clear
    assert plan.fired_count() > 0  # the walk actually exercised the plan
    engine.close()


def test_chaos_soak_membership(tmp_path):
    rng = random.Random(stable_seed("chaos-soak", "membership") + CHAOS_SEED)
    engine = QueryEngine(store=ArtifactStore(tmp_path))
    engine.register("membership", membership_class(), sorted_run_scheme())
    oracle = [rng.randint(0, 30) for _ in range(16)]
    handle = engine.open_dataset("membership", tuple(oracle))
    plan = _chaos_plan("membership")
    with plan.armed():
        for _ in range(SOAK_STEPS):
            value = rng.randint(-5, 30)
            roll = rng.random()
            if roll < 0.3:
                handle.apply_changes([_insert(value)])
                oracle.append(value)
            elif roll < 0.5:
                handle.apply_changes([_delete(value)])
                if value in oracle:
                    oracle.remove(value)
            _check(handle, value, value in oracle)
    _finish(engine, handle, plan)


def test_chaos_soak_selection(tmp_path):
    rng = random.Random(stable_seed("chaos-soak", "selection") + CHAOS_SEED)
    engine = QueryEngine(store=ArtifactStore(tmp_path))
    engine.register("point", point_selection_class(), btree_point_scheme())
    rows = [(rng.randint(0, 15), rng.randint(0, 15)) for _ in range(12)]
    handle = engine.open_dataset("point", _relation_of(rows))
    plan = _chaos_plan("selection")
    with plan.armed():
        for _ in range(SOAK_STEPS):
            row = (rng.randint(0, 15), rng.randint(0, 15))
            roll = rng.random()
            if roll < 0.3:
                handle.apply_changes([_insert(*row)])
                rows.append(row)
            elif roll < 0.5 and rows:
                victim = rng.choice(rows) if rng.random() < 0.7 else row
                handle.apply_changes([_delete(*victim)])
                if victim in rows:
                    rows.remove(victim)
            attribute, position = rng.choice([("a", 0), ("b", 1)])
            constant = rng.randint(0, 15)
            _check(
                handle,
                (attribute, constant),
                any(r[position] == constant for r in rows),
            )
    _finish(engine, handle, plan)


def test_chaos_soak_rmq(tmp_path):
    rng = random.Random(stable_seed("chaos-soak", "rmq") + CHAOS_SEED)
    engine = QueryEngine(store=ArtifactStore(tmp_path))
    engine.register("rmq", rmq_class(), fischer_heun_scheme())
    oracle = [rng.randint(-50, 50) for _ in range(24)]
    handle = engine.open_dataset("rmq", tuple(oracle))
    plan = _chaos_plan("rmq")
    with plan.armed():
        for _ in range(SOAK_STEPS):
            if rng.random() < 0.5:
                position = rng.randrange(len(oracle))
                value = rng.randint(-50, 50)
                handle.apply_changes([PointWrite(position, value)])
                oracle[position] = value
            i = rng.randrange(len(oracle))
            j = rng.randrange(i, len(oracle))
            p = rng.randrange(i, j + 1)
            _check(handle, (i, j, p), _rmq_oracle(oracle, i, j, p))
    _finish(engine, handle, plan)


def test_chaos_soak_topk(tmp_path):
    rng = random.Random(stable_seed("chaos-soak", "topk") + CHAOS_SEED)
    engine = QueryEngine(store=ArtifactStore(tmp_path))
    engine.register("topk", topk_class(), threshold_algorithm_scheme())
    rows = [(rng.randint(0, 20), rng.randint(0, 20)) for _ in range(10)]
    handle = engine.open_dataset("topk", tuple(rows))
    plan = _chaos_plan("topk")
    with plan.armed():
        for _ in range(SOAK_STEPS):
            roll = rng.random()
            if roll < 0.3:
                row = (rng.randint(0, 20), rng.randint(0, 20))
                handle.apply_changes([_insert(*row)])
                rows.append(row)
            elif roll < 0.5 and len(rows) > 1:
                victim = rng.choice(rows)
                handle.apply_changes([_delete(*victim)])
                rows.remove(victim)
            weights = (rng.randint(1, 3), rng.randint(1, 3))
            k = rng.randint(1, 8)
            theta = rng.randint(0, 120)
            _check(handle, (weights, k, theta), _topk_oracle(rows, weights, k, theta))
    _finish(engine, handle, plan)


def test_chaos_soak_reachability(tmp_path):
    rng = random.Random(stable_seed("chaos-soak", "reachability") + CHAOS_SEED)
    engine = QueryEngine(store=ArtifactStore(tmp_path))
    engine.register("reach", reachability_class(), closure_scheme())
    n = 12
    oracle = Digraph(n, [(0, 1), (1, 2)])
    handle = engine.open_dataset("reach", oracle)
    plan = _chaos_plan("reachability")
    with plan.armed():
        for _ in range(SOAK_STEPS):
            u, v = rng.randrange(n), rng.randrange(n)
            roll = rng.random()
            if roll < 0.35:
                handle.apply_changes([EdgeChange(ChangeKind.INSERT, u, v)])
                oracle.add_edge(u, v)
            elif roll < 0.45:
                handle.apply_changes([EdgeChange(ChangeKind.DELETE, u, v)])
                oracle.remove_edge(u, v)
            s, t = rng.randrange(n), rng.randrange(n)
            _check(handle, (s, t), is_reachable(oracle, s, t))
    _finish(engine, handle, plan)


# -- random fault plans interleaved with a stateful oracle ---------------------

#: Scenarios a monolithic mutable handle can meet (shard sites never fire).
HANDLE_SCENARIOS = (
    "failed-delta-apply",
    "disk-full-writebehind",
    "corrupt-artifact",
    "eviction-storm",
)


class ChaosMembershipMachine(RuleBasedStateMachine):
    """The PR 3 membership oracle machine, with arm/disarm as *rules*.

    Hypothesis interleaves inserts, deletes, probes and fault-plan changes
    in arbitrary orders; after every probe the answer must be correct
    against the shadow bag, explicitly degraded, or loudly raised.
    """

    values = st.integers(min_value=-8, max_value=24)

    def __init__(self):
        super().__init__()
        faults.clear_fault_plan()  # a prior failing example must not leak
        self._tmp = tempfile.TemporaryDirectory()
        self.engine = QueryEngine(store=ArtifactStore(self._tmp.name))
        self.engine.register("membership", membership_class(), sorted_run_scheme())
        self.oracle = [3, 1, 4, 1, 5]
        self.handle = self.engine.open_dataset("membership", tuple(self.oracle))

    @rule(name=st.sampled_from(HANDLE_SCENARIOS), seed=st.integers(0, 999))
    def arm(self, name, seed):
        if faults.active_plan() is None:
            plan = scenario(
                name, seed=seed, times=None, probability=0.5, policy=SOAK_POLICY
            )
            faults.install_fault_plan(plan)

    @rule()
    def disarm(self):
        faults.clear_fault_plan()

    @rule(value=values)
    def insert(self, value):
        self.handle.apply_changes([_insert(value)])
        self.oracle.append(value)

    @rule(value=values)
    def delete(self, value):
        self.handle.apply_changes([_delete(value)])
        if value in self.oracle:
            self.oracle.remove(value)

    @rule(value=values)
    def probe(self, value):
        _check(self.handle, value, value in self.oracle)

    def teardown(self):
        faults.clear_fault_plan()
        try:
            self.handle.close()  # clean store: the final flush must succeed
            self.engine.close()
        finally:
            self._tmp.cleanup()


ChaosMembershipMachine.TestCase.settings = MACHINE_SETTINGS
TestChaosMembershipMachine = ChaosMembershipMachine.TestCase
