"""Chaos suite: every registered fault scenario, pinned to its recovery.

One test per :data:`repro.service.faults.SCENARIOS` entry.  Each test arms
the scenario against a real serving stack, asserts the *defined* recovery
behavior (the "Failure model" table in ``docs/architecture.md``), and
asserts the exact health counters the scenario must move
(``stats_snapshot()["health"]``).  A completeness test at the bottom keeps
the registry and this file in lockstep: adding a scenario without pinning
it here fails CI.

The suite is deselected from tier-1 by the ``chaos`` marker (see
``pyproject.toml``); the CI chaos job runs it under three fixed seeds via
``CHAOS_SEED``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.catalog import build_query_engine
from repro.core.errors import ShardFailedError, WriteBehindError
from repro.incremental.changes import ChangeKind, TupleChange
from repro.service import faults
from repro.service.artifacts import ArtifactStore
from repro.service.faults import (
    SCENARIOS,
    DegradedAnswer,
    RecoveryPolicy,
    scenario,
)

pytestmark = pytest.mark.chaos

#: The CI chaos job sweeps this over three fixed seeds; locally it is 0.
CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

#: Fast backoffs/thresholds so retry loops resolve in milliseconds.
FAST_POLICY = RecoveryPolicy(
    writebehind_attempts=2,
    writebehind_backoff_seconds=0.001,
    slow_shard_seconds=0.005,
    slow_load_seconds=0.005,
)


@pytest.fixture(autouse=True)
def _always_disarm():
    """No test may leak an armed plan into the next (or into teardown)."""
    yield
    faults.clear_fault_plan()


def _insert(*row):
    return TupleChange(ChangeKind.INSERT, tuple(row))


def _persisted_membership(tmp_path, data):
    """Build and persist the list-membership artifact, then return a fresh
    engine whose first query must come from the store."""
    store = ArtifactStore(tmp_path)
    with build_query_engine(store=store) as warmup:
        warmup.warm("list-membership", data)
    return build_query_engine(store=store)


# -- store.read ----------------------------------------------------------------


def test_corrupt_artifact_recovers_by_bounded_retry(tmp_path):
    """One corrupt read (default ``times=1``): the engine counts the
    checksum failure, retries the read, and serves from the now-clean file
    -- no rebuild, no deleted artifact."""
    data = tuple(range(64))
    with _persisted_membership(tmp_path, data) as engine:
        ds = engine.attach("d", data, kinds=["list-membership"])
        with scenario("corrupt-artifact", seed=CHAOS_SEED).armed():
            assert ds.query("list-membership", 7)
            assert not ds.query("list-membership", 99)
        health = engine.stats().health()
        assert health["checksum_failures"] == 1
        assert health["rebuild_retries"] == 1
        stats = engine.stats().per_kind["list-membership"]
        assert stats.store_hits == 1  # the retry read the clean file
        assert stats.builds == 0  # recovery never fell back to a rebuild
        assert engine._store.contains(engine.artifact_key("list-membership", data))


def test_corrupt_artifact_persistent_rebuilds_from_source(tmp_path):
    """Every read corrupt (``times=None``): retries exhaust, the bad
    artifact is deleted, and the structure rebuilds from source -- always
    safe, artifacts are pure caches of PTIME-recomputable state."""
    data = tuple(range(64))
    with _persisted_membership(tmp_path, data) as engine:
        ds = engine.attach("d", data, kinds=["list-membership"])
        with scenario("corrupt-artifact", seed=CHAOS_SEED, times=None).armed():
            assert ds.query("list-membership", 7)
        health = engine.stats().health()
        assert health["checksum_failures"] == 2  # first read + one retry
        assert health["rebuild_retries"] == 1
        stats = engine.stats().per_kind["list-membership"]
        assert stats.store_hits == 0
        assert stats.builds == 1
    # The rebuild re-persisted a clean artifact: a third engine store-hits.
    with build_query_engine(store=ArtifactStore(tmp_path)) as engine:
        assert engine.attach("d", data, kinds=["list-membership"]).query(
            "list-membership", 7
        )
        assert engine.stats().per_kind["list-membership"].store_hits == 1


def test_truncate_artifact_detected_and_recovered(tmp_path):
    """Truncation trips the length/checksum integrity checks -- the same
    recovery family as bit rot: count, retry, serve."""
    data = tuple(range(64))
    with _persisted_membership(tmp_path, data) as engine:
        ds = engine.attach("d", data, kinds=["list-membership"])
        with scenario("truncate-artifact", seed=CHAOS_SEED).armed():
            assert ds.query("list-membership", 7)
        health = engine.stats().health()
        assert health["checksum_failures"] == 1
        assert health["rebuild_retries"] == 1
        assert engine.stats().per_kind["list-membership"].store_hits == 1


def test_slow_artifact_read_counts_slow_loads(tmp_path):
    """A slow read still serves correctly; the latency is observable as a
    ``slow_loads`` tick instead of a silent stall."""
    data = tuple(range(64))
    with _persisted_membership(tmp_path, data) as engine:
        ds = engine.attach("d", data, kinds=["list-membership"])
        plan = scenario("slow-artifact-read", seed=CHAOS_SEED, policy=FAST_POLICY)
        with plan.armed():
            assert ds.query("list-membership", 7)
        assert plan.fired_count("store.read") == 1
        health = engine.stats().health()
        assert health["slow_loads"] >= 1
        assert health["checksum_failures"] == 0
        assert engine.stats().per_kind["list-membership"].store_hits == 1


# -- shard.partial -------------------------------------------------------------


def test_dead_shard_union_degrades_explicitly():
    """Union-merge kinds answer from the surviving shards, but the answer
    is a :class:`DegradedAnswer` -- partial, loud, never silently wrong."""
    data = tuple(range(64))
    with build_query_engine(shards=3) as engine:
        ds = engine.attach("d", data, kinds=["list-membership"], shards=3)
        assert ds.query("list-membership", 7)  # warm all routed state
        plan = scenario("dead-shard", kind="list-membership", seed=CHAOS_SEED)
        with plan.armed():
            answer = ds.query("list-membership", 7)
        assert isinstance(answer, DegradedAnswer)
        assert answer.partial is True
        assert answer.failed_shards  # names which shard was lost
        assert answer == answer or True  # int-compatible; never raises
        health = engine.stats().health()
        assert health["degraded_answers"] == 1
        assert health["shard_failures"] == 0  # union never fails fast
        # Disarmed, the same probe is whole again -- and unmarked.
        recovered = ds.query("list-membership", 7)
        assert recovered and not getattr(recovered, "partial", False)


def test_dead_shard_monoid_fails_fast():
    """Monoid-combine kinds (RMQ) cannot tolerate a missing partial: a lost
    shard raises :class:`ShardFailedError` instead of guessing."""
    data = tuple(range(48))
    with build_query_engine(shards=3) as engine:
        ds = engine.attach("d", data, kinds=["minimum-range-query"], shards=3)
        assert ds.query("minimum-range-query", (0, 47, 0))  # warm
        with scenario("dead-shard", kind="minimum-range-query", seed=CHAOS_SEED).armed():
            with pytest.raises(ShardFailedError):
                ds.query("minimum-range-query", (0, 47, 0))
        health = engine.stats().health()
        assert health["shard_failures"] == 1
        assert health["degraded_answers"] == 0
        assert ds.query("minimum-range-query", (0, 47, 0))  # recovered


def test_dead_shard_kway_fails_fast():
    """K-way-merge kinds (top-k) are fail-fast like monoids: a global
    ranking cannot be cut down to the shards that answered."""
    data = tuple((i, 100 - i) for i in range(16))  # every row aggregates to 100
    with build_query_engine(shards=3) as engine:
        ds = engine.attach("d", data, kinds=["topk-threshold"], shards=3)
        assert ds.query("topk-threshold", ((1, 1), 3, 100))  # warm
        with scenario("dead-shard", kind="topk-threshold", seed=CHAOS_SEED).armed():
            with pytest.raises(ShardFailedError):
                ds.query("topk-threshold", ((1, 1), 3, 100))
        assert engine.stats().health()["shard_failures"] == 1
        assert ds.query("topk-threshold", ((1, 1), 3, 100))


def test_slow_shard_counts_timeouts_and_stays_correct():
    data = tuple(range(64))
    with build_query_engine(shards=3) as engine:
        ds = engine.attach("d", data, kinds=["list-membership"], shards=3)
        assert ds.query("list-membership", 7)
        plan = scenario(
            "slow-shard", kind="list-membership", seed=CHAOS_SEED, policy=FAST_POLICY
        )
        with plan.armed():
            answer = ds.query("list-membership", 7)
        assert answer and not getattr(answer, "partial", False)
        health = engine.stats().health()
        assert health["shard_timeouts"] >= 1
        assert health["degraded_answers"] == 0


# -- cache.put -----------------------------------------------------------------


def test_eviction_storm_never_changes_answers():
    """Every cache insert force-evicts a batch of entries, racing the
    serve-plan invalidation watchers.  Serving survives: structures
    re-resolve through the ordinary layers and answers never change."""
    data = tuple(range(64))
    with build_query_engine(cache_entries=8) as engine:
        ds = engine.attach(
            "d", data, kinds=["list-membership", "minimum-range-query"]
        )
        expected_member = [(probe, probe in data) for probe in range(-4, 70, 7)]
        plan = scenario("eviction-storm", seed=CHAOS_SEED, storm_size=2)
        with plan.armed():
            for _ in range(5):
                for probe, expected in expected_member:
                    assert ds.query("list-membership", probe) == expected
                assert ds.query("minimum-range-query", (0, 63, 0))
        assert plan.fired_count("cache.put") > 0
        assert engine.stats().cache.evictions > 0
        assert engine.stats().health()["cache_listener_errors"] == 0


# -- mutable.delta -------------------------------------------------------------


def test_failed_delta_apply_commits_batch_and_repairs():
    """``apply_delta`` crashes mid-batch: the batch still commits (content
    is the source of truth) and the structure is repaired by rebuild, so no
    torn snapshot is ever published."""
    with build_query_engine() as engine:
        ds = engine.attach("d", (1, 2, 3), kinds=["list-membership"], mutable=True)
        assert ds.query("list-membership", 2)  # materialize the structure
        with scenario("failed-delta-apply", kind="list-membership", seed=CHAOS_SEED).armed():
            ds.apply_changes([_insert(9)])
            # The faulted batch is fully visible -- no torn state.
            assert ds.query("list-membership", 9)
            assert ds.query("list-membership", 2)
        health = engine.stats().health()
        assert health["write_rollbacks"] == 1
        stats = engine.stats().per_kind["list-membership"]
        assert stats.fallback_rebuilds == 1
        assert stats.delta_batches == 0  # the crashed fold never counted
        # Disarmed, the next batch folds in place again.
        ds.apply_changes([_insert(11)])
        assert ds.query("list-membership", 11)
        assert engine.stats().per_kind["list-membership"].delta_batches == 1


def test_failed_delta_apply_on_handle_commits_and_repairs():
    """Same torn-batch guard on the analytic DatasetHandle surface."""
    with build_query_engine() as engine:
        handle = engine.open_dataset("list-membership", (1, 2, 3))
        with scenario("failed-delta-apply", seed=CHAOS_SEED).armed():
            handle.apply_changes([_insert(9)])
            assert handle.query(9)
        health = engine.stats().health()
        assert health["write_rollbacks"] == 1
        assert engine.stats().per_kind["list-membership"].fallback_rebuilds == 1
        handle.close()


# -- store.write ---------------------------------------------------------------


def test_disk_full_writebehind_retries_then_flush_raises(tmp_path):
    """Write-behind hits a full disk: retries with backoff, keeps serving
    from memory, and ``flush()`` surfaces the terminal error instead of
    silently leaving a stale artifact.  Clearing the fault heals."""
    store = ArtifactStore(tmp_path)
    with build_query_engine(store=store) as engine:
        ds = engine.attach("d", (1, 2, 3), kinds=["list-membership"], mutable=True)
        assert ds.query("list-membership", 2)
        plan = scenario(
            "disk-full-writebehind", seed=CHAOS_SEED, times=None, policy=FAST_POLICY
        )
        with plan.armed():
            ds.apply_changes([_insert(9)])
            assert ds.query("list-membership", 9)  # memory stays current
            with pytest.raises(WriteBehindError) as excinfo:
                ds.flush()
            assert isinstance(excinfo.value.__cause__, OSError)
        health = engine.stats().health()
        assert health["writebehind_retries"] >= 1
        assert health["writebehind_failures"] >= 1
        ds.flush()  # disk "freed": the sync re-persist succeeds and heals
        assert ds.query("list-membership", 9)


def test_disk_full_sync_build_serves_from_memory(tmp_path):
    """A cold build whose synchronous persist fails still serves -- only
    durability is lost, and ``persist_failures`` makes that observable."""
    data = tuple(range(64))
    store = ArtifactStore(tmp_path)
    with build_query_engine(store=store) as engine:
        ds = engine.attach("d", data, kinds=["list-membership"])
        with scenario("disk-full-writebehind", seed=CHAOS_SEED, times=None).armed():
            assert ds.query("list-membership", 7)
            assert not ds.query("list-membership", 99)
        health = engine.stats().health()
        assert health["persist_failures"] == 1
        assert not store.contains(engine.artifact_key("list-membership", data))
        assert engine.stats().per_kind["list-membership"].builds == 1


# -- worker.serve --------------------------------------------------------------


def _fast_worker_policy():
    return RecoveryPolicy(
        worker_restart_attempts=3,
        worker_restart_backoff_seconds=0.01,
    )


def _await_full_strength(supervisor, budget_seconds=10.0):
    """Poll until every worker slot is healthy again; the budget bounds the
    whole restart story (backoff + spawn + engine boot + replay)."""
    deadline = time.monotonic() + budget_seconds
    while time.monotonic() < deadline:
        health = supervisor.health()
        if health["healthy_workers"] == health["workers"]:
            return health
        time.sleep(0.02)
    return supervisor.health()


def test_dead_worker_reads_retry_once_and_pool_restores(tmp_path):
    """A worker killed mid-read (``worker.serve`` crash on worker 0): the
    in-flight read is retried once on a healthy sibling -- every answer
    stays exactly right, no call errors -- and the slot restarts within the
    backoff budget, re-attaching the dataset from the supervisor's table."""
    from repro.service.frontend.supervisor import Supervisor

    data = tuple(range(64))
    expected = set(data)
    plan = scenario("dead-worker", seed=CHAOS_SEED, after=2 + CHAOS_SEED % 3)
    supervisor = Supervisor(
        2,
        store_root=str(tmp_path),
        policy=_fast_worker_policy(),
        fault_plan=plan,
        fault_workers=(0,),
        poll_seconds=0.005,
    )
    supervisor.start()
    try:
        supervisor.call(
            "attach", dataset="d",
            value={"name": "d", "data": data, "kinds": ["list-membership"],
                   "shards": 1, "mutable": False},
        )
        for query in range(-4, 36):
            answer = supervisor.call(
                "query", dataset="d",
                value={"kind": "list-membership", "query": query},
            )
            assert answer is (query in expected)  # never silently wrong
        health = _await_full_strength(supervisor)
        assert health["healthy_workers"] == 2
        assert health["crashes_detected"] == 1
        assert health["worker_restarts"] >= 1
        assert health["retried_requests"] >= 1
        assert health["failed_requests"] == 0
        # The restarted slot serves from the replayed attach table.
        assert supervisor.call(
            "query", dataset="d",
            value={"kind": "list-membership", "query": 7},
        ) is True
    finally:
        supervisor.close()


def test_dead_worker_rehomes_mutable_dataset_with_its_journal(tmp_path):
    """The crashed worker *homed* a mutable dataset: the supervisor replays
    the attach frame plus every acknowledged change batch onto a healthy
    worker, so post-crash reads see all pre-crash writes."""
    from repro.service.frontend.supervisor import Supervisor

    data = tuple(range(32))
    plan = scenario("dead-worker", seed=CHAOS_SEED, after=1)
    supervisor = Supervisor(
        2,
        store_root=str(tmp_path),
        policy=_fast_worker_policy(),
        fault_plan=plan,
        fault_workers=(0,),
        poll_seconds=0.005,
    )
    supervisor.start()
    try:
        ack = supervisor.call(
            "attach", dataset="mut",
            value={"name": "mut", "data": data, "kinds": ["list-membership"],
                   "shards": 1, "mutable": True},
        )
        assert ack["mutable"] is True

        def read(query):
            return supervisor.call(
                "query", dataset="mut",
                value={"kind": "list-membership", "query": query},
            )

        supervisor.call(
            "apply_changes", dataset="mut",
            value={"changes": [_insert(99)]},
        )
        supervisor.call(
            "apply_changes", dataset="mut",
            value={"changes": [TupleChange(ChangeKind.DELETE, (5,))]},
        )
        assert read(99) is True    # 1st home read: skipped by after=1
        assert read(5) is False    # 2nd: the home worker dies mid-read,
        #                            the retry lands after journal replay
        assert read(31) is True
        health = _await_full_strength(supervisor)
        assert health["healthy_workers"] == 2
        assert health["crashes_detected"] == 1
        assert health["rehomed_datasets"] == 1
        assert health["retried_requests"] >= 1
        # The re-homed copy keeps versioning from the replayed journal.
        stats = supervisor.call("stats", dataset="mut")
        assert stats["version"] == 2
        assert stats["frontend"]["worker_restarts"] >= 1
    finally:
        supervisor.close()


def test_slow_worker_expired_reads_surface_typed_deadline_errors(tmp_path):
    """A persistently slow worker (``worker.serve`` slow on worker 0) under
    a per-request deadline: every read that lands on the slow copy surfaces
    a typed :class:`DeadlineExceededError` well inside the client timeout --
    never a silent stall -- and the breaker isolates the slow worker so the
    healthy sibling keeps answering exactly right."""
    from repro.core.errors import DeadlineExceededError
    from repro.service.frontend import RemoteClient, ServingFront

    data = tuple(range(64))
    expected = set(data)
    policy = RecoveryPolicy(
        slow_worker_seconds=0.25,
        breaker_failure_threshold=3,
        breaker_reset_seconds=60.0,  # stays open for the whole test
    )
    plan = scenario("slow-worker", seed=CHAOS_SEED, policy=policy)
    with ServingFront(
        workers=2, store_root=str(tmp_path), fault_plan=plan,
        fault_workers=(0,), hedge_delay_ms=None,
    ) as front:
        client = RemoteClient(*front.address, retry_budget=0)
        try:
            ds = client.attach("d", data, kinds=["list-membership"])
            ds.set_deadline(80.0)
            expired = served = 0
            for query in range(16):
                start = time.monotonic()
                try:
                    answer = ds.query("list-membership", query)
                except DeadlineExceededError as exc:
                    expired += 1
                    assert exc.op == "query"
                    assert exc.dataset == "d"
                else:
                    served += 1
                    assert answer is (query in expected)
                # typed shedding, not a stall: each call resolves fast
                assert time.monotonic() - start < 5.0
            health = front.supervisor.health()
            assert expired >= 1 and served >= 1
            assert (
                health["deadline_expired_supervisor"]
                + health["deadline_expired_worker"]
            ) >= expired
            # deadline expiries are shed work, not infrastructure failures
            assert health["failed_requests"] == 0
            assert health["breakers"]["0"] == "open"
            assert health["breakers"]["1"] == "closed"
            assert health["breaker_opened"] == 1
        finally:
            client.close()


def test_slow_worker_breaker_opens_then_halfopen_probe_recloses(tmp_path):
    """The full breaker cycle: deadline expiries on the slow worker trip
    its breaker (closed -> open), traffic routes around it, and once the
    injected slowness is exhausted a half-open probe re-admits the worker
    (open -> half_open -> closed)."""
    from repro.core.errors import DeadlineExceededError
    from repro.service.frontend import RemoteClient, ServingFront

    data = tuple(range(64))
    expected = set(data)
    policy = RecoveryPolicy(
        slow_worker_seconds=0.2,
        breaker_failure_threshold=3,
        breaker_reset_seconds=0.3,
    )
    # Finite firings: after six slow serves worker 0 is fast again, so the
    # half-open probe that lands there can succeed and close the breaker.
    plan = scenario("slow-worker", seed=CHAOS_SEED, policy=policy, times=6)
    with ServingFront(
        workers=2, store_root=str(tmp_path), fault_plan=plan,
        fault_workers=(0,), hedge_delay_ms=None,
    ) as front:
        client = RemoteClient(*front.address, retry_budget=0)
        try:
            ds = client.attach("d", data, kinds=["list-membership"])
            ds.set_deadline(60.0)
            expired = 0
            for query in range(16):
                try:
                    answer = ds.query("list-membership", query)
                except DeadlineExceededError:
                    expired += 1
                else:
                    assert answer is (query in expected)
            health = front.supervisor.health()
            assert expired >= policy.breaker_failure_threshold
            assert health["breakers"]["0"] == "open"
            assert health["breaker_opened"] == 1
            # Past the reset window, traffic itself probes and re-admits.
            time.sleep(policy.breaker_reset_seconds + 0.1)
            ds.set_deadline(None)
            for query in range(12):
                assert ds.query("list-membership", query) is True
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                health = front.supervisor.health()
                if health["breakers"]["0"] == "closed":
                    break
                ds.query("list-membership", 1)
                time.sleep(0.02)
            assert health["breakers"]["0"] == "closed"
            assert health["breaker_probes"] >= 1
            assert health["breaker_closed"] >= 1
        finally:
            client.close()


def test_slow_worker_hedged_reads_keep_tail_bounded(tmp_path):
    """With hedging on (and no deadline), reads stuck on the slow worker
    are raced against a healthy sibling after ``hedge_delay_ms``: the first
    answer wins, every answer stays exactly right, and the run finishes in
    a fraction of the unhedged worst case."""
    from repro.service.frontend import RemoteClient, ServingFront

    data = tuple(range(64))
    expected = set(data)
    slow = 0.4
    policy = RecoveryPolicy(slow_worker_seconds=slow)
    plan = scenario("slow-worker", seed=CHAOS_SEED, policy=policy)
    with ServingFront(
        workers=2, store_root=str(tmp_path), fault_plan=plan,
        fault_workers=(0,), hedge_delay_ms=25.0,
    ) as front:
        client = RemoteClient(*front.address)
        try:
            ds = client.attach("d", data, kinds=["list-membership"])
            count = 8
            start = time.monotonic()
            for query in range(count):
                assert ds.query("list-membership", query) is (query in expected)
            elapsed = time.monotonic() - start
            health = front.supervisor.health()
            assert health["hedged_requests"] >= 1
            assert health["hedge_wins"] >= 1
            assert health["failed_requests"] == 0
            # Round-robin parks ~half the reads on the slow worker; without
            # hedging that alone costs ~(count / 2) * slow seconds.
            assert elapsed < (count / 2) * slow
        finally:
            client.close()


# -- registry completeness -----------------------------------------------------

#: scenario name -> the test(s) above that pin its recovery contract.
PINNED = {
    "dead-worker": (
        test_dead_worker_reads_retry_once_and_pool_restores,
        test_dead_worker_rehomes_mutable_dataset_with_its_journal,
    ),
    "corrupt-artifact": (
        test_corrupt_artifact_recovers_by_bounded_retry,
        test_corrupt_artifact_persistent_rebuilds_from_source,
    ),
    "truncate-artifact": (test_truncate_artifact_detected_and_recovered,),
    "slow-artifact-read": (test_slow_artifact_read_counts_slow_loads,),
    "dead-shard": (
        test_dead_shard_union_degrades_explicitly,
        test_dead_shard_monoid_fails_fast,
        test_dead_shard_kway_fails_fast,
    ),
    "slow-shard": (test_slow_shard_counts_timeouts_and_stays_correct,),
    "eviction-storm": (test_eviction_storm_never_changes_answers,),
    "failed-delta-apply": (
        test_failed_delta_apply_commits_batch_and_repairs,
        test_failed_delta_apply_on_handle_commits_and_repairs,
    ),
    "slow-worker": (
        test_slow_worker_expired_reads_surface_typed_deadline_errors,
        test_slow_worker_breaker_opens_then_halfopen_probe_recloses,
        test_slow_worker_hedged_reads_keep_tail_bounded,
    ),
    "disk-full-writebehind": (
        test_disk_full_writebehind_retries_then_flush_raises,
        test_disk_full_sync_build_serves_from_memory,
    ),
}


def test_every_registered_scenario_is_pinned():
    """Adding a scenario to the registry without a chaos test fails here."""
    assert set(PINNED) == set(SCENARIOS)
    for name, tests in PINNED.items():
        assert tests, name
        assert all(callable(test) for test in tests), name
