"""Property test: sharded answers equal monolithic answers (ISSUE 2).

The headline equivalence guarantee of the sharding subsystem: for random
datasets and any shard count K in {1, 2, 4, 8}, scatter-gather serving
returns exactly the answers of the monolithic path -- and of the naive
reference semantics -- for every registered query kind that declares a
shard spec.  This is what lets the engine choose K freely as a pure
performance knob.
"""

from __future__ import annotations

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import build_query_engine
from repro.service.engine import QueryRequest

# The raw-payload QueryRequest form used throughout this module is
# deprecated (named sessions are the supported surface); its behavior
# is pinned here on purpose, so silence the migration warning.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: One monolithic reference engine, and one engine per sharded K.  Engines
#: are append-only caches, so sharing them across hypothesis examples is
#: sound and keeps the test fast.
_MONOLITHIC = build_query_engine()
_SHARDED = {k: build_query_engine(shards=k) for k in (2, 4, 8)}
_KINDS = _MONOLITHIC.shardable_kinds()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    size=st.integers(min_value=4, max_value=160),
    seed=st.integers(min_value=0, max_value=2**16),
    shards=st.sampled_from([1, 2, 4, 8]),
)
def test_sharded_equals_monolithic_for_every_kind(size, seed, shards):
    engine = _MONOLITHIC if shards == 1 else _SHARDED[shards]
    for kind in _KINDS:
        query_class, _ = engine.registration(kind)
        data, queries = query_class.sample_workload(size, seed, 6)
        requests = [QueryRequest(kind, data, query) for query in queries]
        got = engine.execute_batch(requests, concurrent=False)
        reference = [
            _MONOLITHIC.execute(QueryRequest(kind, data, query)) for query in queries
        ]
        naive = [query_class.pair_in_language(data, query) for query in queries]
        assert got == reference == naive, (kind, shards, size, seed)


@settings(max_examples=10, deadline=None)
@given(
    size=st.integers(min_value=4, max_value=96),
    seed=st.integers(min_value=0, max_value=2**16),
    shards=st.sampled_from([2, 4, 8]),
)
def test_concurrent_sharded_batch_equals_naive(size, seed, shards):
    """The same equivalence holds under the thread pool (builds may race)."""
    engine = _SHARDED[shards]
    requests, naive = [], []
    for kind in _KINDS:
        query_class, _ = engine.registration(kind)
        data, queries = query_class.sample_workload(size, seed, 3)
        for query in queries:
            requests.append(QueryRequest(kind, data, query))
            naive.append(query_class.pair_in_language(data, query))
    assert engine.execute_batch(requests, concurrent=True) == naive
