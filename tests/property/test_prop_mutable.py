"""Stateful oracle tests for mutable datasets (ISSUE 3).

The headline trust argument of the write path: a Hypothesis
:class:`~hypothesis.stateful.RuleBasedStateMachine` per delta-capable kind
interleaves inserts, deletes, point writes and queries against a
:class:`~repro.service.mutable.DatasetHandle`, and after *every* step the
handle's answers must equal a brute-force Python oracle over the shadow
dataset.  Machines run with ``derandomize=True`` so failures reproduce (and
shrink) deterministically across runs.

The ``test_soak_*`` functions complement the machines with deterministic
500+-step random walks per kind (seeded through
:func:`repro.core.query.stable_seed`), guaranteeing the step volume the
acceptance bar asks for regardless of how Hypothesis budgets its examples.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.query import stable_seed
from repro.graphs.graph import Digraph
from repro.graphs.traversal import is_reachable
from repro.incremental.changes import ChangeKind, EdgeChange, PointWrite, TupleChange
from repro.queries import (
    btree_point_scheme,
    btree_range_scheme,
    closure_scheme,
    fischer_heun_scheme,
    membership_class,
    point_selection_class,
    range_selection_class,
    reachability_class,
    rmq_class,
    sorted_run_scheme,
    threshold_algorithm_scheme,
    topk_class,
)
from repro.service.engine import QueryEngine
from repro.storage.relation import Relation
from repro.storage.schema import AttributeType, Schema

MACHINE_SETTINGS = settings(
    max_examples=15,
    stateful_step_count=30,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)

#: Deterministic soak length per kind (the "500+ steps" acceptance bar).
SOAK_STEPS = 520


def _insert(*row):
    return TupleChange(ChangeKind.INSERT, tuple(row))


def _delete(*row):
    return TupleChange(ChangeKind.DELETE, tuple(row))


# -- oracles -------------------------------------------------------------------


def _rmq_oracle(array, i, j, p):
    return min(range(i, j + 1), key=lambda k: (array[k], k)) == p


def _topk_oracle(rows, weights, k, theta):
    aggregates = sorted(
        (sum(w * v for w, v in zip(weights, row)) for row in rows), reverse=True
    )
    return aggregates[min(k, len(aggregates)) - 1] >= theta


def _selection_schema():
    return Schema("R", [("a", AttributeType.INT), ("b", AttributeType.INT)])


def _relation_of(rows):
    relation = Relation(_selection_schema())
    for row in rows:
        relation.insert(row)
    return relation


# -- stateful machines ---------------------------------------------------------


class MembershipMachine(RuleBasedStateMachine):
    """L1 under churn: bag of ints, sorted-run delta maintenance."""

    values = st.integers(min_value=-8, max_value=24)  # small domain: collisions

    def __init__(self):
        super().__init__()
        self.engine = QueryEngine()
        self.engine.register("membership", membership_class(), sorted_run_scheme())
        self.oracle = [3, 1, 4, 1, 5]
        self.handle = self.engine.open_dataset("membership", tuple(self.oracle))

    @rule(value=values)
    def insert(self, value):
        self.handle.apply_changes([_insert(value)])
        self.oracle.append(value)

    @rule(value=values)
    def delete(self, value):
        self.handle.apply_changes([_delete(value)])
        if value in self.oracle:
            self.oracle.remove(value)

    @rule(value=values)
    def probe(self, value):
        assert self.handle.query(value) == (value in self.oracle)

    @invariant()
    def answers_match_oracle(self):
        for value in (self.oracle[:2] if self.oracle else []) + [-99, 7]:
            assert self.handle.query(value) == (value in self.oracle)

    def teardown(self):
        self.engine.close()


class SelectionMachine(RuleBasedStateMachine):
    """Example 1 under churn: one relation, point and range handles in step."""

    cell = st.integers(min_value=0, max_value=12)

    def __init__(self):
        super().__init__()
        self.engine = QueryEngine()
        self.engine.register("point", point_selection_class(), btree_point_scheme())
        self.engine.register("range", range_selection_class(), btree_range_scheme())
        self.rows = [(1, 2), (3, 4), (3, 9)]
        self.point = self.engine.open_dataset("point", _relation_of(self.rows))
        self.range = self.engine.open_dataset("range", _relation_of(self.rows))

    def _apply(self, change):
        self.point.apply_changes([change])
        self.range.apply_changes([change])

    @rule(a=cell, b=cell)
    def insert(self, a, b):
        self._apply(_insert(a, b))
        self.rows.append((a, b))

    @rule(a=cell, b=cell)
    def delete(self, a, b):
        self._apply(_delete(a, b))
        if (a, b) in self.rows:
            self.rows.remove((a, b))

    @rule(attribute=st.sampled_from(["a", "b"]), constant=cell)
    def point_probe(self, attribute, constant):
        position = 0 if attribute == "a" else 1
        expected = any(row[position] == constant for row in self.rows)
        assert self.point.query((attribute, constant)) == expected

    @rule(attribute=st.sampled_from(["a", "b"]), low=cell, span=st.integers(0, 5))
    def range_probe(self, attribute, low, span):
        position = 0 if attribute == "a" else 1
        expected = any(low <= row[position] <= low + span for row in self.rows)
        assert self.range.query((attribute, low, low + span)) == expected

    def teardown(self):
        self.engine.close()


class RMQMachine(RuleBasedStateMachine):
    """L2 under churn: point writes repair in place, appends force a rebuild."""

    def __init__(self):
        super().__init__()
        self.engine = QueryEngine()
        self.engine.register("rmq", rmq_class(), fischer_heun_scheme())
        self.oracle = [5, -2, 8, 1, 9, 3, 3, -4, 0, 6, 2, 7]
        self.handle = self.engine.open_dataset("rmq", tuple(self.oracle))

    @rule(slot=st.integers(0, 10**6), value=st.integers(-20, 20))
    def write(self, slot, value):
        position = slot % len(self.oracle)
        self.handle.apply_changes([PointWrite(position, value)])
        self.oracle[position] = value

    @rule(value=st.integers(-20, 20))
    def append(self, value):
        # Length changes are outside the PointWrite vocabulary: this batch
        # must fall back to a rebuild and still agree with the oracle.
        self.handle.apply_changes([_insert(value)])
        self.oracle.append(value)

    @rule(data=st.data())
    def probe(self, data):
        n = len(self.oracle)
        i = data.draw(st.integers(0, n - 1))
        j = data.draw(st.integers(i, n - 1))
        p = data.draw(st.integers(i, j))
        assert self.handle.query((i, j, p)) == _rmq_oracle(self.oracle, i, j, p)

    @invariant()
    def global_minimum_matches(self):
        n = len(self.oracle)
        p = min(range(n), key=lambda k: (self.oracle[k], k))
        assert self.handle.query((0, n - 1, p)) is True

    def teardown(self):
        self.engine.close()


class TopKMachine(RuleBasedStateMachine):
    """Section 8(5) under churn: TA index maintained under row inserts/deletes."""

    score = st.integers(min_value=0, max_value=10)

    def __init__(self):
        super().__init__()
        self.engine = QueryEngine()
        self.engine.register("topk", topk_class(), threshold_algorithm_scheme())
        self.rows = [(5, 5), (1, 9), (9, 1)]
        self.handle = self.engine.open_dataset("topk", tuple(self.rows))

    @rule(a=score, b=score)
    def insert(self, a, b):
        self.handle.apply_changes([_insert(a, b)])
        self.rows.append((a, b))

    @rule(data=st.data())
    def delete(self, data):
        if len(self.rows) <= 1:
            return  # an empty table cannot be served; keep one row
        row = data.draw(st.sampled_from(self.rows))
        self.handle.apply_changes([_delete(*row)])
        self.rows.remove(row)

    @rule(
        w1=st.integers(1, 3),
        w2=st.integers(1, 3),
        k=st.integers(1, 6),
        theta=st.integers(0, 60),
    )
    def probe(self, w1, w2, k, theta):
        expected = _topk_oracle(self.rows, (w1, w2), k, theta)
        assert self.handle.query(((w1, w2), k, theta)) == expected

    @invariant()
    def best_row_matches(self):
        assert self.handle.query(((1, 1), 1, max(a + b for a, b in self.rows))) is True

    def teardown(self):
        self.engine.close()


class ReachabilityMachine(RuleBasedStateMachine):
    """Example 3 under churn: closure maintained under inserts, rebuilt on
    deletes, always equal to BFS over the shadow graph."""

    vertex = st.integers(min_value=0, max_value=9)

    def __init__(self):
        super().__init__()
        self.engine = QueryEngine()
        self.engine.register("reach", reachability_class(), closure_scheme())
        self.oracle = Digraph(10, [(0, 1), (1, 2), (4, 5)])
        self.handle = self.engine.open_dataset("reach", self.oracle)
        # open_dataset copies; mutate our shadow independently.

    @rule(u=vertex, v=vertex)
    def add_edge(self, u, v):
        self.handle.apply_changes([EdgeChange(ChangeKind.INSERT, u, v)])
        self.oracle.add_edge(u, v)

    @rule(u=vertex, v=vertex)
    def remove_edge(self, u, v):
        self.handle.apply_changes([EdgeChange(ChangeKind.DELETE, u, v)])
        self.oracle.remove_edge(u, v)

    @rule(s=vertex, t=vertex)
    def probe(self, s, t):
        assert self.handle.query((s, t)) == is_reachable(self.oracle, s, t)

    @invariant()
    def reflexive_and_spot_checked(self):
        assert self.handle.query((3, 3)) is True
        assert self.handle.query((0, 2)) == is_reachable(self.oracle, 0, 2)

    def teardown(self):
        self.engine.close()


for _machine in (
    MembershipMachine,
    SelectionMachine,
    RMQMachine,
    TopKMachine,
    ReachabilityMachine,
):
    _machine.TestCase.settings = MACHINE_SETTINGS

TestMembershipMachine = MembershipMachine.TestCase
TestSelectionMachine = SelectionMachine.TestCase
TestRMQMachine = RMQMachine.TestCase
TestTopKMachine = TopKMachine.TestCase
TestReachabilityMachine = ReachabilityMachine.TestCase


# -- deterministic 500+-step soaks ---------------------------------------------


def test_soak_membership():
    rng = random.Random(stable_seed("soak", "membership"))
    with QueryEngine() as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        oracle = [rng.randint(0, 30) for _ in range(16)]
        handle = engine.open_dataset("membership", tuple(oracle))
        for _ in range(SOAK_STEPS):
            value = rng.randint(-5, 30)
            roll = rng.random()
            if roll < 0.3:
                handle.apply_changes([_insert(value)])
                oracle.append(value)
            elif roll < 0.5:
                handle.apply_changes([_delete(value)])
                if value in oracle:
                    oracle.remove(value)
            assert handle.query(value) == (value in oracle)
        assert engine.stats().per_kind["membership"].delta_batches > 50


def test_soak_selection():
    rng = random.Random(stable_seed("soak", "selection"))
    with QueryEngine() as engine:
        engine.register("point", point_selection_class(), btree_point_scheme())
        rows = [(rng.randint(0, 15), rng.randint(0, 15)) for _ in range(12)]
        handle = engine.open_dataset("point", _relation_of(rows))
        for _ in range(SOAK_STEPS):
            row = (rng.randint(0, 15), rng.randint(0, 15))
            roll = rng.random()
            if roll < 0.3:
                handle.apply_changes([_insert(*row)])
                rows.append(row)
            elif roll < 0.5 and rows:
                victim = rng.choice(rows) if rng.random() < 0.7 else row
                handle.apply_changes([_delete(*victim)])
                if victim in rows:
                    rows.remove(victim)
            attribute, position = rng.choice([("a", 0), ("b", 1)])
            constant = rng.randint(0, 15)
            expected = any(r[position] == constant for r in rows)
            assert handle.query((attribute, constant)) == expected
        assert engine.stats().per_kind["point"].delta_batches > 50


def test_soak_rmq():
    rng = random.Random(stable_seed("soak", "rmq"))
    with QueryEngine() as engine:
        engine.register("rmq", rmq_class(), fischer_heun_scheme())
        oracle = [rng.randint(-50, 50) for _ in range(24)]
        handle = engine.open_dataset("rmq", tuple(oracle))
        for _ in range(SOAK_STEPS):
            if rng.random() < 0.5:
                position = rng.randrange(len(oracle))
                value = rng.randint(-50, 50)
                handle.apply_changes([PointWrite(position, value)])
                oracle[position] = value
            i = rng.randrange(len(oracle))
            j = rng.randrange(i, len(oracle))
            p = rng.randrange(i, j + 1)
            assert handle.query((i, j, p)) == _rmq_oracle(oracle, i, j, p)
        assert engine.stats().per_kind["rmq"].delta_batches > 50
        assert engine.stats().per_kind["rmq"].fallback_rebuilds == 0


def test_soak_topk():
    rng = random.Random(stable_seed("soak", "topk"))
    with QueryEngine() as engine:
        engine.register("topk", topk_class(), threshold_algorithm_scheme())
        rows = [(rng.randint(0, 20), rng.randint(0, 20)) for _ in range(10)]
        handle = engine.open_dataset("topk", tuple(rows))
        for _ in range(SOAK_STEPS):
            roll = rng.random()
            if roll < 0.3:
                row = (rng.randint(0, 20), rng.randint(0, 20))
                handle.apply_changes([_insert(*row)])
                rows.append(row)
            elif roll < 0.5 and len(rows) > 1:
                victim = rng.choice(rows)
                handle.apply_changes([_delete(*victim)])
                rows.remove(victim)
            weights = (rng.randint(1, 3), rng.randint(1, 3))
            k = rng.randint(1, 8)
            theta = rng.randint(0, 120)
            expected = _topk_oracle(rows, weights, k, theta)
            assert handle.query((weights, k, theta)) == expected
        assert engine.stats().per_kind["topk"].delta_batches > 50


def test_soak_reachability():
    rng = random.Random(stable_seed("soak", "reachability"))
    with QueryEngine() as engine:
        engine.register("reach", reachability_class(), closure_scheme())
        n = 12
        oracle = Digraph(n, [(0, 1), (1, 2)])
        handle = engine.open_dataset("reach", oracle)
        for _ in range(SOAK_STEPS):
            u, v = rng.randrange(n), rng.randrange(n)
            roll = rng.random()
            if roll < 0.35:
                handle.apply_changes([EdgeChange(ChangeKind.INSERT, u, v)])
                oracle.add_edge(u, v)
            elif roll < 0.45:
                handle.apply_changes([EdgeChange(ChangeKind.DELETE, u, v)])
                oracle.remove_edge(u, v)
            s, t = rng.randrange(n), rng.randrange(n)
            assert handle.query((s, t)) == is_reachable(oracle, s, t)
        stats = engine.stats().per_kind["reach"]
        assert stats.delta_batches > 20  # inserts maintained in place
        assert stats.fallback_rebuilds > 5  # real deletes rebuilt


@pytest.mark.parametrize(
    "soak",
    [
        test_soak_membership,
        test_soak_selection,
        test_soak_rmq,
        test_soak_topk,
        test_soak_reachability,
    ],
    ids=lambda f: f.__name__.replace("test_soak_", ""),
)
def test_soak_step_budget_documented(soak):
    """Each soak drives SOAK_STEPS (>500) oracle-checked steps per kind."""
    assert SOAK_STEPS > 500
