"""Property tests: the Sigma* codec round-trips arbitrary nested values."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import alphabet

# Encodable scalars; text kept printable-ish but including every delimiter
# character the codec must escape.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FF),
        max_size=40,
    ),
)

values = st.recursive(
    scalars,
    lambda children: st.lists(children, max_size=6).map(tuple),
    max_leaves=30,
)


@given(values)
@settings(max_examples=200)
def test_roundtrip(value):
    assert alphabet.decode(alphabet.encode(value)) == value


@given(values)
@settings(max_examples=100)
def test_encoding_never_contains_raw_delimiters(value):
    encoded = alphabet.encode(value)
    assert alphabet.PAIR_DELIMITER not in encoded
    assert alphabet.PADDING_DELIMITER not in encoded


@given(values, values)
@settings(max_examples=100)
def test_pair_roundtrip(data, query):
    assert alphabet.decode_pair(alphabet.encode_pair(data, query)) == (data, query)


@given(values, values)
@settings(max_examples=100)
def test_encoding_is_injective_on_samples(a, b):
    # Note: Python equality conflates 0 == False and 1 == True; the codec is
    # *finer* than ==, distinguishing bools from ints.  So the right
    # injectivity statement is: equal encodings iff equal decoded values.
    same_encoding = alphabet.encode(a) == alphabet.encode(b)
    if same_encoding:
        assert alphabet.decode(alphabet.encode(a)) == alphabet.decode(
            alphabet.encode(b)
        )
        assert repr(alphabet.decode(alphabet.encode(a))) == repr(
            alphabet.decode(alphabet.encode(b))
        )
    if a != b:
        assert not same_encoding
