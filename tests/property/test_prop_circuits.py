"""Property tests: circuit evaluation invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import (
    Circuit,
    dual_rail_inputs,
    evaluate,
    evaluate_all,
    evaluate_layered,
    random_circuit,
    to_monotone_dual_rail,
)
from repro.core import CostTracker
from repro.parallel import ParallelMachine


@st.composite
def circuits_with_inputs(draw):
    n_inputs = draw(st.integers(min_value=1, max_value=6))
    n_gates = draw(st.integers(min_value=1, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**30))
    circuit = random_circuit(n_inputs, n_gates, random.Random(seed))
    inputs = draw(
        st.lists(st.booleans(), min_size=n_inputs, max_size=n_inputs)
    )
    return circuit, inputs


@given(circuits_with_inputs())
@settings(max_examples=120)
def test_layered_equals_sequential(pair):
    circuit, inputs = pair
    machine = ParallelMachine(CostTracker())
    assert evaluate_layered(circuit, inputs, machine) == evaluate(circuit, inputs)


@given(circuits_with_inputs())
@settings(max_examples=120)
def test_dual_rail_preserves_value(pair):
    circuit, inputs = pair
    monotone = to_monotone_dual_rail(circuit)
    assert monotone.is_monotone
    assert evaluate(monotone, dual_rail_inputs(inputs)) == evaluate(circuit, inputs)


@given(circuits_with_inputs())
@settings(max_examples=80)
def test_dual_rail_rails_are_complementary(pair):
    # Re-transform and check that evaluating the transformed circuit's output
    # gate and re-deriving the original's complement stay consistent: the
    # double transform also preserves values.
    circuit, inputs = pair
    twice = to_monotone_dual_rail(to_monotone_dual_rail(circuit))
    assert evaluate(
        twice, dual_rail_inputs(dual_rail_inputs(inputs))
    ) == evaluate(circuit, inputs)


@given(circuits_with_inputs())
@settings(max_examples=80)
def test_encode_decode_roundtrip(pair):
    circuit, _ = pair
    assert Circuit.decode(circuit.encode()) == circuit


@given(circuits_with_inputs())
@settings(max_examples=80)
def test_gate_values_respect_monotone_input_flips(pair):
    # Flipping an input of a monotone circuit from False to True can only
    # turn gate values on, never off.
    circuit, inputs = pair
    monotone = to_monotone_dual_rail(circuit)
    base_inputs = dual_rail_inputs(inputs)
    base_values = evaluate_all(monotone, base_inputs)
    for position in range(len(base_inputs)):
        if not base_inputs[position]:
            raised = list(base_inputs)
            raised[position] = True
            raised_values = evaluate_all(monotone, raised)
            assert all(
                (not before) or after
                for before, after in zip(base_values, raised_values)
            )
