"""Property tests: RMQ structures and LCA indexes against their definitions."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Digraph, Graph
from repro.indexes import (
    DagLCAIndex,
    EulerTourLCA,
    FischerHeunRMQ,
    SparseTable,
    naive_dag_lca,
    naive_range_min,
    naive_tree_lca,
)

arrays = st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=200)


@given(arrays, st.data())
@settings(max_examples=80)
def test_rmq_structures_agree_with_naive(array, data):
    sparse = SparseTable(array)
    fischer = FischerHeunRMQ(array)
    i = data.draw(st.integers(min_value=0, max_value=len(array) - 1))
    j = data.draw(st.integers(min_value=i, max_value=len(array) - 1))
    expected = naive_range_min(array, i, j)
    assert sparse.argmin(i, j) == expected
    assert fischer.argmin(i, j) == expected


@st.composite
def random_trees(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**30))
    rng = random.Random(seed)
    tree = Graph(n)
    for v in range(1, n):
        tree.add_edge(rng.randrange(v), v)
    return tree


@given(random_trees(), st.data())
@settings(max_examples=60)
def test_euler_lca_matches_definition(tree, data):
    index = EulerTourLCA(tree, 0)
    u = data.draw(st.integers(min_value=0, max_value=tree.n - 1))
    v = data.draw(st.integers(min_value=0, max_value=tree.n - 1))
    w = index.lca(u, v)
    assert w == naive_tree_lca(tree, 0, u, v)
    # Definitional check: w is an ancestor of both...
    assert index.is_ancestor(w, u)
    assert index.is_ancestor(w, v)


@st.composite
def random_dags(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    seed = draw(st.integers(min_value=0, max_value=2**30))
    rng = random.Random(seed)
    dag = Digraph(n)
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        u, v = rng.randrange(n), rng.randrange(n)
        if u < v:
            dag.add_edge(u, v)
    return dag


@given(random_dags(), st.data())
@settings(max_examples=60)
def test_dag_lca_satisfies_paper_definition(dag, data):
    index = DagLCAIndex(dag)
    u = data.draw(st.integers(min_value=0, max_value=dag.n - 1))
    v = data.draw(st.integers(min_value=0, max_value=dag.n - 1))
    w = index.lca(u, v)
    assert w == naive_dag_lca(dag, u, v)
    if w == -1:
        assert index.all_lcas(u, v) == []
        return
    # The paper's definition: w is a common (reflexive) ancestor with no
    # descendant that is also a common ancestor.
    assert index.is_ancestor(w, u) and index.is_ancestor(w, v)
    for other in index.all_lcas(u, v):
        if other != w:
            assert not index.is_ancestor(w, other) or other == w
    assert w in index.all_lcas(u, v)
