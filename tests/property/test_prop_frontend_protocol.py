"""Property tests for the serving-front wire format (ISSUE 9, satellite c).

Three families of properties:

* **value round-trip**: every value the serving surface speaks -- nested
  containers, bytes, change objects, :class:`DegradedAnswer` -- survives
  ``decode_body(encode_body(v))`` with *exact* types (tuple stays tuple,
  set stays set, a degraded answer keeps its reason and shard list);
* **frame round-trip**: ``unpack_frame(pack_frame(...))`` returns the
  header and body unchanged, for request, response and error frames, and
  streams of concatenated frames parse one by one off a blocking reader;
* **rejection**: oversized frames are refused from the length prefix
  alone (before any body byte is read), and bad magic / version / codec /
  truncation all raise :class:`~repro.core.errors.ProtocolError` instead
  of returning garbage.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import errors as error_mod
from repro.core.errors import (
    OverloadedError,
    ProtocolError,
    ServiceError,
    UnknownDatasetError,
    WorkerFailedError,
)
from repro.incremental.changes import ChangeKind, EdgeChange, PointWrite, TupleChange
from repro.service.faults import DegradedAnswer
from repro.service.frontend import protocol

#: Codecs available in this environment (msgpack only when installed).
CODECS = [protocol.CODEC_JSON] + (
    [protocol.CODEC_MSGPACK] if protocol.msgpack is not None else []
)

scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False, width=64)
    | st.text(max_size=24)
)

hashables = scalars | st.binary(max_size=24)

changes = (
    st.builds(
        TupleChange,
        st.sampled_from(list(ChangeKind)),
        st.lists(scalars, max_size=3).map(tuple),
    )
    | st.builds(
        EdgeChange,
        st.sampled_from(list(ChangeKind)),
        st.integers(0, 100),
        st.integers(0, 100),
    )
    | st.builds(PointWrite, st.integers(0, 100), scalars)
)

degraded = st.builds(
    lambda v, reason, shards: DegradedAnswer(
        v, reason=reason, failed_shards=tuple(shards)
    ),
    st.booleans(),
    st.text(min_size=1, max_size=16),
    st.lists(st.integers(0, 16), max_size=4),
)

wire_values = st.recursive(
    scalars | st.binary(max_size=24) | changes | degraded,
    lambda inner: (
        st.lists(inner, max_size=4)
        | st.lists(inner, max_size=4).map(tuple)
        | st.dictionaries(hashables, inner, max_size=4)
        | st.sets(hashables, max_size=4)
        | st.frozensets(hashables, max_size=4)
    ),
    max_leaves=12,
)


def assert_wire_equal(decoded, original):
    """Equality plus *type* fidelity: `==` alone would let a tuple pass as
    a list and a DegradedAnswer pass as a bool."""
    if isinstance(original, DegradedAnswer):
        assert isinstance(decoded, DegradedAnswer)
        assert bool(decoded) == bool(original)
        assert decoded.reason == original.reason
        assert decoded.failed_shards == original.failed_shards
        return
    if isinstance(original, bool) or original is None:
        assert decoded is original
        return
    assert type(decoded) is type(original), (decoded, original)
    if isinstance(original, tuple) and not hasattr(original, "_fields"):
        assert len(decoded) == len(original)
        for d, o in zip(decoded, original):
            assert_wire_equal(d, o)
    elif isinstance(original, list):
        assert len(decoded) == len(original)
        for d, o in zip(decoded, original):
            assert_wire_equal(d, o)
    elif isinstance(original, dict):
        assert decoded == original
    else:
        assert decoded == original


@pytest.mark.parametrize("codec", CODECS)
@settings(max_examples=150, deadline=None)
@given(value=wire_values)
def test_body_round_trip_is_type_exact(codec, value):
    assert_wire_equal(protocol.decode_body(protocol.encode_body(value, codec), codec), value)


@pytest.mark.parametrize("codec", CODECS)
@pytest.mark.parametrize("op", sorted(protocol.REQUEST_OPS))
@settings(max_examples=40, deadline=None)
@given(rid=st.integers(0, 2**31), dataset=st.text(max_size=16), value=wire_values)
def test_request_frame_round_trip(codec, op, rid, dataset, value):
    header = {"op": op, "rid": rid, "dataset": dataset}
    raw = protocol.pack_frame(header, value, codec=codec)
    rheader, rbody, rcodec = protocol.unpack_frame(raw)
    assert rheader == header
    assert rcodec == codec
    assert_wire_equal(protocol.decode_body(rbody, rcodec), value)


@settings(max_examples=40, deadline=None)
@given(rid=st.integers(0, 2**31), value=wire_values)
def test_response_and_error_frames_round_trip(rid, value):
    ok_raw = protocol.pack_frame({"rid": rid, "ok": True, "op": "query"}, value)
    header, body, codec = protocol.unpack_frame(ok_raw)
    assert header["ok"] is True
    assert_wire_equal(protocol.decode_body(body, codec), value)

    err = UnknownDatasetError("no dataset 'd'")
    err_raw = protocol.pack_frame(
        {"rid": rid, "ok": False, "op": "query"}, protocol.error_payload(err)
    )
    header, body, codec = protocol.unpack_frame(err_raw)
    assert header["ok"] is False
    payload = protocol.decode_body(body, codec)
    assert payload == {"type": "UnknownDatasetError", "message": "no dataset 'd'"}


@settings(max_examples=25, deadline=None)
@given(values=st.lists(wire_values, min_size=1, max_size=5))
def test_frame_stream_parses_one_by_one(values):
    raw = b"".join(
        protocol.pack_frame({"op": "query", "rid": i, "dataset": "d"}, value)
        for i, value in enumerate(values)
    )
    stream = io.BytesIO(raw)
    for i, value in enumerate(values):
        frame = protocol.read_frame(stream)
        assert frame is not None
        header, body, codec = frame
        assert header["rid"] == i
        assert_wire_equal(protocol.decode_body(body, codec), value)
    assert protocol.read_frame(stream) is None  # clean EOF at the boundary


# -- rejection properties ------------------------------------------------------


def test_oversized_frame_rejected_at_pack_time():
    with pytest.raises(ProtocolError, match="exceeds"):
        protocol.pack_frame(
            {"op": "attach", "rid": 1, "dataset": "d"},
            list(range(4096)),
            max_frame_bytes=64,
        )


def test_oversized_frame_rejected_from_prefix_before_body_read():
    """The length prefix alone must trigger rejection: feed *only* the
    10-byte prefix declaring a huge body.  A reader that waited for the
    body would die with "closed mid-frame" instead of "exceeds"."""
    prefix = protocol._PREFIX.pack(
        protocol.MAGIC, protocol.PROTOCOL_VERSION, protocol.CODEC_JSON, 2, 2**31
    )
    with pytest.raises(ProtocolError, match="exceeds"):
        protocol.read_frame(io.BytesIO(prefix))


@settings(max_examples=60, deadline=None)
@given(cut=st.integers(min_value=1, max_value=200), value=wire_values)
def test_truncated_frame_raises_never_returns_garbage(cut, value):
    raw = protocol.pack_frame({"op": "query", "rid": 1, "dataset": "d"}, value)
    if cut >= len(raw):
        cut = len(raw) - 1
    with pytest.raises(ProtocolError, match="mid-frame"):
        protocol.read_frame(io.BytesIO(raw[:cut]))


def test_bad_magic_version_and_codec_rejected():
    good = protocol.pack_frame({"op": "ping", "rid": 1, "dataset": ""}, None)
    with pytest.raises(ProtocolError, match="magic"):
        protocol.unpack_frame(b"XX" + good[2:])
    with pytest.raises(ProtocolError, match="version"):
        protocol.unpack_frame(good[:2] + bytes([99]) + good[3:])
    with pytest.raises(ProtocolError, match="codec"):
        protocol.unpack_frame(good[:3] + bytes([7]) + good[4:])


def test_unencodable_value_and_unknown_tag_rejected():
    with pytest.raises(ProtocolError, match="cannot encode"):
        protocol.encode_value(object())
    with pytest.raises(ProtocolError, match="unknown wire tag"):
        protocol.decode_value({"$": "mystery", "v": 1})
    with pytest.raises(ProtocolError, match="unknown change type"):
        protocol.decode_value({"$": "c", "c": "Nope", "v": {}})
    with pytest.raises(ProtocolError, match="bare array"):
        protocol.decode_value([1, 2, 3])


@pytest.mark.skipif(protocol.msgpack is not None, reason="msgpack installed")
def test_msgpack_codec_without_msgpack_is_a_structured_error():
    with pytest.raises(ProtocolError, match="msgpack"):
        protocol.encode_body(1, protocol.CODEC_MSGPACK)
    raw = protocol.pack_frame({"op": "ping", "rid": 1, "dataset": ""}, None)
    tampered = raw[:3] + bytes([protocol.CODEC_MSGPACK]) + raw[4:]
    with pytest.raises(ProtocolError, match="msgpack"):
        protocol.unpack_frame(tampered)
    assert protocol.default_codec() == protocol.CODEC_JSON


# -- structured error mapping --------------------------------------------------


def test_every_library_error_maps_back_to_its_class():
    assert "UnknownDatasetError" in protocol.ERROR_TYPES
    assert "OverloadedError" in protocol.ERROR_TYPES
    for name, cls in protocol.ERROR_TYPES.items():
        with pytest.raises(cls) as excinfo:
            protocol.raise_remote({"type": name, "message": "boom"})
        assert type(excinfo.value) is cls
        assert "boom" in str(excinfo.value)


def test_new_error_types_map_without_protocol_edits():
    """ERROR_TYPES is built from the errors module, so the three frontend
    errors introduced by this PR are already on the wire map."""
    for cls in (ProtocolError, OverloadedError, WorkerFailedError):
        assert protocol.ERROR_TYPES[cls.__name__] is cls
        assert issubclass(cls, error_mod.ServiceError)


def test_unknown_remote_error_degrades_to_service_error():
    with pytest.raises(ServiceError, match="remote KeyError: lost"):
        protocol.raise_remote({"type": "KeyError", "message": "lost"})


# -- v2 deadlines (ISSUE 10) ---------------------------------------------------


@pytest.mark.parametrize("codec", CODECS)
@settings(max_examples=60, deadline=None)
@given(
    rid=st.integers(0, 2**31),
    deadline_ms=st.floats(
        min_value=0.001, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
)
def test_deadline_header_round_trips_in_both_codecs(codec, rid, deadline_ms):
    """``deadline_ms`` is an *optional* header field: frames that carry it
    round-trip it exactly, frames that omit it stay byte-compatible with
    what a v1 peer emits."""
    header = {"op": "query", "rid": rid, "dataset": "d", "deadline_ms": deadline_ms}
    rheader, _, rcodec = protocol.unpack_frame(
        protocol.pack_frame(header, {"kind": "k", "query": 1}, codec=codec)
    )
    assert rcodec == codec
    assert rheader["deadline_ms"] == pytest.approx(deadline_ms)
    bare = {"op": "query", "rid": rid, "dataset": "d"}
    rheader, _, _ = protocol.unpack_frame(protocol.pack_frame(bare, None, codec=codec))
    assert "deadline_ms" not in rheader


@settings(max_examples=40, deadline=None)
@given(rid=st.integers(0, 2**31), value=wire_values)
def test_v1_frames_still_decode(rid, value):
    """A v1 peer's frames (version byte 1, no deadline field) must keep
    parsing: the wire layout is identical, only the version byte differs."""
    raw = protocol.pack_frame({"op": "query", "rid": rid, "dataset": "d"}, value)
    assert raw[2] == protocol.PROTOCOL_VERSION
    v1_raw = raw[:2] + bytes([1]) + raw[3:]
    header, body, codec = protocol.unpack_frame(v1_raw)
    assert header == {"op": "query", "rid": rid, "dataset": "d"}
    assert_wire_equal(protocol.decode_body(body, codec), value)


@pytest.mark.parametrize("codec", CODECS)
@settings(max_examples=60, deadline=None)
@given(
    op=st.sampled_from(sorted(protocol.REQUEST_OPS)),
    dataset=st.text(min_size=1, max_size=16),
    elapsed_ms=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    budget_ms=st.none()
    | st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
)
def test_deadline_error_details_survive_the_wire(codec, op, dataset, elapsed_ms, budget_ms):
    """A worker-side DeadlineExceededError reconstructs client-side with
    its op/dataset/budget arithmetic intact (via wire_details ->
    error_payload -> raise_remote)."""
    original = error_mod.DeadlineExceededError(
        "budget expired", op=op, dataset=dataset,
        elapsed_ms=elapsed_ms, budget_ms=budget_ms,
    )
    payload = protocol.decode_body(
        protocol.encode_body(protocol.error_payload(original), codec), codec
    )
    assert payload["type"] == "DeadlineExceededError"
    with pytest.raises(error_mod.DeadlineExceededError) as excinfo:
        protocol.raise_remote(payload)
    remote = excinfo.value
    assert remote.op == op
    assert remote.dataset == dataset
    assert remote.elapsed_ms == pytest.approx(elapsed_ms)
    if budget_ms is None:
        assert remote.budget_ms is None
    else:
        assert remote.budget_ms == pytest.approx(budget_ms)
