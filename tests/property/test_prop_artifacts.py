"""Property tests for artifact serialization (ISSUE 1, round-trip guarantee).

Two families of properties:

* **round-trip identity**: for every serializable scheme, ``load(dump(Pi(D)))``
  answers every query exactly like the freshly built structure (and both
  agree with the naive reference semantics);
* **tamper evidence**: flipping any single byte of a stored artifact makes
  the store raise an :class:`~repro.core.errors.ArtifactError` subclass
  instead of silently returning a damaged payload.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.cost import CostTracker
from repro.core.errors import (
    ArtifactCorruptionError,
    ArtifactError,
    ArtifactVersionError,
)
from repro.indexes.btree import BPlusTree
from repro.queries import (
    btree_point_scheme,
    btree_range_scheme,
    closure_scheme,
    dag_bitset_scheme,
    dag_lca_class,
    euler_tour_scheme,
    fischer_heun_scheme,
    hash_point_scheme,
    membership_class,
    point_selection_class,
    range_selection_class,
    reachability_class,
    rmq_class,
    sorted_run_scheme,
    sparse_table_scheme,
    threshold_algorithm_scheme,
    topk_class,
    tree_lca_class,
)
from repro.service.artifacts import ArtifactKey, ArtifactStore

#: Every (query class, serializable scheme) pair the engine can persist.
SERIALIZABLE_CASES = [
    ("point-selection/btree", point_selection_class, btree_point_scheme),
    ("point-selection/hash", point_selection_class, hash_point_scheme),
    ("range-selection/btree", range_selection_class, btree_range_scheme),
    ("membership/sorted-run", membership_class, sorted_run_scheme),
    ("rmq/fischer-heun", rmq_class, fischer_heun_scheme),
    ("rmq/sparse-table", rmq_class, sparse_table_scheme),
    ("tree-lca/euler-tour", tree_lca_class, euler_tour_scheme),
    ("dag-lca/bitset", dag_lca_class, dag_bitset_scheme),
    ("reachability/closure", reachability_class, closure_scheme),
    ("topk/threshold-algorithm", topk_class, threshold_algorithm_scheme),
]


@pytest.mark.parametrize(
    "make_class,make_scheme",
    [case[1:] for case in SERIALIZABLE_CASES],
    ids=[case[0] for case in SERIALIZABLE_CASES],
)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(size=st.integers(min_value=4, max_value=72), seed=st.integers(0, 2**20))
def test_load_dump_round_trip_answers_identically(make_class, make_scheme, size, seed):
    query_class = make_class()
    scheme = make_scheme()
    assert scheme.serializable
    data, queries = query_class.sample_workload(size, seed, 12)
    built = scheme.preprocess(data, CostTracker())
    loaded = scheme.load(scheme.dump(built))
    for query in queries:
        expected = scheme.answer(built, query)
        assert scheme.answer(loaded, query) == expected
        assert query_class.pair_in_language(data, query) == expected


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.integers(-500, 500), min_size=0, max_size=300),
    order=st.integers(min_value=4, max_value=33),
)
def test_btree_state_round_trip_preserves_invariants(keys, order):
    tree = BPlusTree.build([(key, position) for position, key in enumerate(keys)], order=order)
    clone = BPlusTree.from_state(tree.to_state())
    clone.check_invariants()
    assert list(clone.items()) == list(tree.items())
    assert len(clone) == len(tree)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    payload=st.binary(min_size=1, max_size=400),
    position_seed=st.integers(0, 2**30),
    flip=st.integers(1, 255),
)
def test_single_byte_corruption_is_always_detected(tmp_path, payload, position_seed, flip):
    store = ArtifactStore(tmp_path / "store")
    key = ArtifactKey(fingerprint="f" * 64, scheme="prop-scheme", params="p|v1")
    path = store.put(key, payload)
    blob = bytearray(path.read_bytes())
    position = position_seed % len(blob)
    blob[position] ^= flip
    path.write_bytes(bytes(blob))
    with pytest.raises(ArtifactError):
        store.get(key)
    # The distinction matters to callers: version errors mean "rebuild",
    # corruption errors mean "rebuild and distrust the medium" -- but both
    # derive from ArtifactError, so the engine's recovery path is uniform.
    try:
        store.get(key)
    except (ArtifactCorruptionError, ArtifactVersionError):
        pass


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(payload=st.binary(min_size=0, max_size=2000))
def test_store_round_trips_arbitrary_payloads(tmp_path, payload):
    store = ArtifactStore(tmp_path / "store")
    key = ArtifactKey(fingerprint="a" * 64, scheme="sort+binary-search", params="|v1")
    store.put(key, payload)
    assert store.get(key) == payload
    assert store.contains(key)
    assert list(store.keys()) == [key]
