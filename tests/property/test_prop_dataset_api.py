"""Property test: the payload-request adapter is indistinguishable (ISSUE 4).

The compatibility contract of the dataset-first redesign: for any workload,
payload-style ``QueryRequest(kind, data, query)`` and named-dataset
``QueryRequest(kind, dataset=..., query=...)`` return **identical answers
and identical build counts** across all five servable kinds, on both the
monolithic and the ``shards=4`` paths.  Build-count equality is the strong
half -- it pins down that the adapter's anonymous attach resolves through
exactly the same artifact layers as a named session, never a duplicate
build or a spurious cache split.
"""

from __future__ import annotations

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import build_query_engine
from repro.service.engine import QueryRequest

# The raw-payload QueryRequest form used throughout this module is
# deprecated (named sessions are the supported surface); its behavior
# is pinned here on purpose, so silence the migration warning.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: The five servable kinds with a ShardSpec (point/range selection, list
#: membership, minimum range query, top-k) -- the same set the engine
#: benchmarks serve.
_KINDS = build_query_engine().shardable_kinds()


def test_the_five_servable_kinds_are_served():
    assert _KINDS == [
        "list-membership",
        "minimum-range-query",
        "point-selection",
        "range-selection",
        "topk-threshold",
    ]


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    size=st.integers(min_value=4, max_value=96),
    seed=st.integers(min_value=0, max_value=2**16),
    shards=st.sampled_from([1, 4]),
)
def test_named_requests_match_payload_requests(size, seed, shards):
    # Fresh engines per example: build counts must be attributable.
    with build_query_engine(shards=shards) as payload_engine, build_query_engine(
        shards=shards
    ) as named_engine:
        for kind in _KINDS:
            query_class, _ = payload_engine.registration(kind)
            data, queries = query_class.sample_workload(size, seed, 5)
            named_engine.attach(f"{kind}-workload", data, kinds=[kind])
            payload_answers = [
                payload_engine.execute(QueryRequest(kind, data, query))
                for query in queries
            ]
            named_answers = [
                named_engine.execute(
                    QueryRequest(kind, dataset=f"{kind}-workload", query=query)
                )
                for query in queries
            ]
            naive = [query_class.pair_in_language(data, query) for query in queries]
            assert payload_answers == named_answers == naive, (kind, shards, size, seed)

        payload_stats = payload_engine.stats()
        named_stats = named_engine.stats()
        for kind in _KINDS:
            payload_kind = payload_stats.per_kind[kind]
            named_kind = named_stats.per_kind[kind]
            assert payload_kind.builds == named_kind.builds, kind
            assert payload_kind.shard_builds == named_kind.shard_builds, kind
            assert payload_kind.queries == named_kind.queries, kind
        # The split that motivates the redesign: the named path never touches
        # the fingerprint memo, the payload path hashes once per dataset.
        assert named_stats.fingerprint_rehashes == 0
        assert payload_stats.fingerprint_rehashes == len(_KINDS)
