"""Property tests for the Section 8 extensions (AGAP, TA, approx VC)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Digraph, gnm_graph, is_reachable
from repro.graphs.alternating import (
    AlternatingDigraph,
    AlternatingReachabilityIndex,
    alternating_reachable,
)
from repro.kernelization import (
    ApproximateVertexCoverOracle,
    VCInstance,
    vc_brute_force,
)
from repro.queries import TopKIndex

seeds = st.integers(min_value=0, max_value=2**30)


@st.composite
def alternating_digraphs(draw, max_n=24):
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(seeds)
    rng = random.Random(seed)
    graph = Digraph(n)
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    universal = [rng.random() < 0.4 for _ in range(n)]
    return AlternatingDigraph(graph, universal)


class TestAGAPProperties:
    @given(alternating_digraphs(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_index_agrees_with_fixpoint(self, agraph, data):
        index = AlternatingReachabilityIndex(agraph)
        u = data.draw(st.integers(min_value=0, max_value=agraph.n - 1))
        v = data.draw(st.integers(min_value=0, max_value=agraph.n - 1))
        assert index.reachable(u, v) == alternating_reachable(agraph, u, v)

    @given(alternating_digraphs(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_alternating_implies_plain_reachability(self, agraph, data):
        # Universal constraints only restrict: alternating-reachable pairs
        # must also be plainly reachable.
        u = data.draw(st.integers(min_value=0, max_value=agraph.n - 1))
        v = data.draw(st.integers(min_value=0, max_value=agraph.n - 1))
        if alternating_reachable(agraph, u, v):
            assert is_reachable(agraph.graph, u, v)


@st.composite
def score_tables(draw):
    n = draw(st.integers(min_value=1, max_value=50))
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=60),
                st.integers(min_value=0, max_value=60),
            ),
            min_size=n,
            max_size=n,
        )
    )
    return tuple(rows)


class TestTAProperties:
    @given(score_tables(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_ta_matches_brute_force(self, table, data):
        index = TopKIndex(table)
        weights = (
            data.draw(st.integers(min_value=1, max_value=4)),
            data.draw(st.integers(min_value=1, max_value=4)),
        )
        k = data.draw(st.integers(min_value=1, max_value=8))
        theta = data.draw(st.integers(min_value=0, max_value=500))
        aggregates = sorted(
            (sum(w * v for w, v in zip(weights, row)) for row in table),
            reverse=True,
        )
        expected = aggregates[min(k, len(aggregates)) - 1] >= theta
        answer, accesses = index.kth_score_at_least(weights, k, theta)
        assert answer == expected
        # TA never exceeds the full-scan access budget.
        assert accesses <= 2 * len(table)

    @given(score_tables(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_ta_is_monotone_in_theta(self, table, data):
        index = TopKIndex(table)
        k = data.draw(st.integers(min_value=1, max_value=5))
        low = data.draw(st.integers(min_value=0, max_value=200))
        high = data.draw(st.integers(min_value=low, max_value=400))
        high_answer, _ = index.kth_score_at_least((1, 1), k, high)
        low_answer, _ = index.kth_score_at_least((1, 1), k, low)
        if high_answer:
            assert low_answer  # lowering theta cannot flip yes to no


class TestApproxVCProperties:
    @given(seeds, st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=5))
    @settings(max_examples=80, deadline=None)
    def test_one_sidedness(self, seed, n, k):
        rng = random.Random(seed)
        graph = gnm_graph(n, rng.randint(0, 2 * n), rng)
        oracle = ApproximateVertexCoverOracle(graph)
        exact = vc_brute_force(VCInstance(graph, k))
        approx = oracle.probably_coverable(k)
        if exact:
            assert approx
        if not approx:
            assert not exact

    @given(seeds, st.integers(min_value=2, max_value=16))
    @settings(max_examples=60, deadline=None)
    def test_factor_two_sandwich(self, seed, n):
        rng = random.Random(seed)
        graph = gnm_graph(n, rng.randint(0, 3 * n), rng)
        oracle = ApproximateVertexCoverOracle(graph)
        assert oracle.lower_bound <= oracle.upper_bound <= 2 * oracle.lower_bound or (
            oracle.lower_bound == oracle.upper_bound == 0
        )
        cover = set(oracle.cover)
        assert all(u in cover or v in cover for u, v in graph.edges())