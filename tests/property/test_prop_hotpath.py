"""Property tests: the untracked fast path answers exactly like the tracked
path (ISSUE 5).

The hot-path contract: for every servable kind, on shards 1 and 4, immutable
and mutable sessions, the serve-plan fast path (``Dataset.query`` /
``query_batch`` -> untracked kernels) returns answers identical to the
analytic tracked path (``Dataset.query_tracked`` -> cost-charging
``evaluate``) and to the naive reference semantics -- including right after
``apply_changes``, where stale serve plans would be the failure mode.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import build_query_engine
from repro.core.cost import CostTracker
from repro.incremental.changes import ChangeKind, PointWrite, TupleChange

#: The five servable kinds (they all declare ShardSpecs and fast kernels).
_KINDS = build_query_engine().shardable_kinds()


def _change_batch(kind: str, data, rng: random.Random):
    """A small, valid change batch for ``kind``'s dataset shape."""
    if kind == "minimum-range-query":
        return [
            PointWrite(rng.randrange(len(data)), rng.randint(-len(data), len(data)))
            for _ in range(rng.randint(1, 3))
        ]
    if kind == "list-membership":
        changes = [
            TupleChange(ChangeKind.INSERT, (rng.randint(0, 4 * len(data)),))
            for _ in range(rng.randint(1, 2))
        ]
        changes.append(TupleChange(ChangeKind.DELETE, (data[rng.randrange(len(data))],)))
        return changes
    if kind == "topk-threshold":
        return [
            TupleChange(ChangeKind.INSERT, (rng.randint(0, 1000), rng.randint(0, 1000)))
            for _ in range(rng.randint(1, 3))
        ]
    # point-/range-selection: a relation -- insert fresh rows, delete a live one.
    rows = data.rows()
    arity = len(rows[0])
    changes = [
        TupleChange(
            ChangeKind.INSERT,
            tuple(rng.randint(0, 4 * len(rows)) for _ in range(arity)),
        )
        for _ in range(rng.randint(1, 2))
    ]
    changes.append(TupleChange(ChangeKind.DELETE, rows[rng.randrange(len(rows))]))
    return changes


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    size=st.integers(min_value=4, max_value=64),
    seed=st.integers(min_value=0, max_value=2**16),
    shards=st.sampled_from([1, 4]),
)
def test_fast_path_equals_tracked_path_immutable(size, seed, shards):
    with build_query_engine() as engine:
        for kind in _KINDS:
            query_class, _ = engine.registration(kind)
            data, queries = query_class.sample_workload(size, seed, 6)
            ds = engine.attach(f"{kind}-ds", data, kinds=[kind], shards=shards)
            fast = [ds.query(kind, query) for query in queries]
            again = [ds.query(kind, query) for query in queries]  # plan warm
            tracked = [
                ds.query_tracked(kind, query, CostTracker()) for query in queries
            ]
            batched = ds.query_batch([(kind, query) for query in queries])
            naive = [query_class.pair_in_language(data, query) for query in queries]
            assert fast == again == tracked == batched == naive, (kind, shards)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    size=st.integers(min_value=4, max_value=48),
    seed=st.integers(min_value=0, max_value=2**16),
    shards=st.sampled_from([1, 4]),
)
def test_fast_path_equals_tracked_path_mutable_across_batches(size, seed, shards):
    """Mutable sessions: equality must hold at version 0, and -- the plan-
    invalidation half of the contract -- immediately after every applied
    change batch, whether the kind was delta-maintained in place or
    fallback-rebuilt (sharded kinds always rebuild)."""
    rng = random.Random(seed)
    with build_query_engine() as engine:
        for kind in _KINDS:
            query_class, _ = engine.registration(kind)
            data, queries = query_class.sample_workload(size, seed, 5)
            ds = engine.attach(
                f"{kind}-mut", data, kinds=[kind], shards=shards, mutable=True
            )
            for round_number in range(3):
                snapshot = ds.dataset()
                probes = list(queries) + query_class.generate_queries(snapshot, rng, 3)
                fast = [ds.query(kind, query) for query in probes]
                tracked = [
                    ds.query_tracked(kind, query, CostTracker()) for query in probes
                ]
                batched = ds.query_batch([(kind, query) for query in probes])
                naive = [
                    query_class.pair_in_language(snapshot, query) for query in probes
                ]
                assert fast == tracked == batched == naive, (
                    kind,
                    shards,
                    round_number,
                )
                ds.apply_changes(_change_batch(kind, snapshot, rng))
