"""Property tests: the B+-tree behaves like a sorted multiset of keys."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.btree import BPlusTree

keys = st.integers(min_value=-100, max_value=100)
orders = st.sampled_from([4, 5, 8, 16])

# An operation sequence: (op, key) with op in insert/delete.
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]), keys),
    max_size=250,
)


@given(st.lists(keys, max_size=300), orders)
@settings(max_examples=60)
def test_build_matches_sorted_input(key_list, order):
    tree = BPlusTree.build([(k, None) for k in key_list], order=order)
    assert tree.keys() == sorted(key_list)
    tree.check_invariants()


@given(operations, orders)
@settings(max_examples=60)
def test_interleaved_operations_match_multiset_model(ops, order):
    tree = BPlusTree(order=order)
    model: Counter = Counter()
    for op, key in ops:
        if op == "insert":
            tree.insert(key, None)
            model[key] += 1
        else:
            deleted = tree.delete(key)
            assert deleted == (model[key] > 0)
            if deleted:
                model[key] -= 1
    tree.check_invariants()
    expected = sorted(model.elements())
    assert tree.keys() == expected
    assert len(tree) == sum(model.values())
    for probe in range(-100, 101, 17):
        assert tree.contains(probe) == (model[probe] > 0)


@given(st.lists(keys, min_size=1, max_size=200), keys, keys, orders)
@settings(max_examples=60)
def test_range_queries_match_filter(key_list, low, high, order):
    if low > high:
        low, high = high, low
    tree = BPlusTree.build([(k, k) for k in key_list], order=order)
    expected = sorted(k for k in key_list if low <= k <= high)
    assert [k for k, _ in tree.range_iter(low, high)] == expected
    assert tree.range_nonempty(low, high) == bool(expected)
