"""Property tests: factorization laws, reduction correctness, incremental
closure agreement -- the executable content of Proposition 1, Lemma 2/8."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compose_f, verify_f_reduction, verify_reduction
from repro.core.reductions import compose
from repro.incremental import IncrementalTransitiveClosure
from repro.kernelization import VCInstance, vc_brute_force, vc_decide
from repro.graphs import Graph, gnm_graph
from repro.queries.bds import bds_problem, upsilon_bds, upsilon_prime
from repro.queries.membership import membership_problem
from repro.reductions_zoo import (
    membership_to_point_selection,
    point_to_range_selection,
    solve_and_emit_bds,
)

seeds = st.integers(min_value=0, max_value=2**30)
sizes = st.integers(min_value=4, max_value=64)


@given(seeds, sizes)
@settings(max_examples=40, deadline=None)
def test_bds_factorizations_roundtrip(seed, size):
    problem = bds_problem()
    instance = problem.generate(size, random.Random(seed))
    upsilon_bds().check_round_trip(instance)
    upsilon_prime().check_round_trip(instance)


@given(seeds, sizes)
@settings(max_examples=30, deadline=None)
def test_f_reduction_chain_preserves_membership(seed, size):
    rng = random.Random(seed)
    from repro.queries.membership import membership_class

    query_class = membership_class()
    data = query_class.generate_data(size, rng)
    queries = query_class.generate_queries(data, rng, 4)
    pairs = [(data, query) for query in queries]
    composite = compose_f(
        membership_to_point_selection(), point_to_range_selection()
    )
    assert verify_f_reduction(composite, pairs) == []


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_solve_and_emit_reduction_on_random_instances(seed):
    problem = membership_problem()
    reduction = solve_and_emit_bds(problem)
    instances = [problem.generate(32, random.Random(seed + i)) for i in range(4)]
    assert verify_reduction(reduction, instances, cross_pairs=False) == []


@given(seeds)
@settings(max_examples=15, deadline=None)
def test_lemma2_composition_on_random_instances(seed):
    problem = membership_problem()
    composite = compose(
        solve_and_emit_bds(problem), solve_and_emit_bds(bds_problem())
    )
    instances = [problem.generate(24, random.Random(seed + i)) for i in range(3)]
    assert verify_reduction(composite, instances, cross_pairs=False) == []


@given(seeds, st.integers(min_value=2, max_value=20), st.integers(min_value=0, max_value=60))
@settings(max_examples=40, deadline=None)
def test_incremental_closure_agrees_with_batch(seed, n, edge_count):
    rng = random.Random(seed)
    closure = IncrementalTransitiveClosure(n)
    for _ in range(edge_count):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            closure.insert_edge(u, v)
    assert closure.agrees_with_recompute()


@given(seeds, st.integers(min_value=2, max_value=9), st.integers(min_value=0, max_value=4))
@settings(max_examples=60, deadline=None)
def test_vc_kernel_decision_matches_brute_force(seed, n, k):
    rng = random.Random(seed)
    graph = gnm_graph(n, rng.randint(0, 2 * n), rng)
    instance = VCInstance(graph, k)
    assert vc_decide(instance) == vc_brute_force(instance)
    assert vc_decide(instance, kernelize=False) == vc_brute_force(instance)
