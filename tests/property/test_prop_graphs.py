"""Property tests: BDS invariants, SCC/closure correctness, compression."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import ReachabilityPreservingCompression
from repro.graphs import (
    Digraph,
    Graph,
    breadth_depth_search,
    breadth_depth_search_reference,
    is_reachable,
    permute_vertices,
    strongly_connected_components,
)
from repro.indexes import TransitiveClosureIndex


@st.composite
def undirected_graphs(draw, max_n=40):
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**30))
    rng = random.Random(seed)
    graph = Graph(n)
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


@st.composite
def digraphs(draw, max_n=35):
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**30))
    rng = random.Random(seed)
    graph = Digraph(n)
    for _ in range(draw(st.integers(min_value=0, max_value=3 * n))):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


class TestBDSProperties:
    @given(undirected_graphs())
    @settings(max_examples=100)
    def test_two_implementations_agree(self, graph):
        assert breadth_depth_search(graph) == breadth_depth_search_reference(graph)

    @given(undirected_graphs())
    @settings(max_examples=60)
    def test_order_is_a_permutation(self, graph):
        assert sorted(breadth_depth_search(graph)) == list(range(graph.n))

    @given(undirected_graphs())
    @settings(max_examples=60)
    def test_first_vertex_is_zero_and_children_ascend(self, graph):
        order = breadth_depth_search(graph)
        assert order[0] == 0
        # The vertices visited right after 0 are exactly 0's neighbours,
        # in ascending numbering order (the definition's first step).
        neighbors = list(graph.neighbors(0))
        assert order[1 : 1 + len(neighbors)] == neighbors

    @given(undirected_graphs(max_n=20), st.integers(min_value=0, max_value=2**30))
    @settings(max_examples=40)
    def test_renumbering_consistency(self, graph, seed):
        # BDS commutes with renumbering: searching the permuted graph equals
        # permuting the search of the original ONLY when the permutation is
        # order-preserving; the identity permutation is a sanity floor.
        identity = list(range(graph.n))
        assert breadth_depth_search(permute_vertices(graph, identity)) == (
            breadth_depth_search(graph)
        )


class TestClosureProperties:
    @given(digraphs(), st.data())
    @settings(max_examples=60)
    def test_index_matches_bfs(self, graph, data):
        index = TransitiveClosureIndex(graph)
        u = data.draw(st.integers(min_value=0, max_value=graph.n - 1))
        v = data.draw(st.integers(min_value=0, max_value=graph.n - 1))
        assert index.reachable(u, v) == is_reachable(graph, u, v)

    @given(digraphs())
    @settings(max_examples=40)
    def test_scc_members_mutually_reachable(self, graph):
        for component in strongly_connected_components(graph):
            anchor = component[0]
            for member in component[1:]:
                assert is_reachable(graph, anchor, member)
                assert is_reachable(graph, member, anchor)


class TestCompressionProperties:
    @given(digraphs(max_n=25), st.data())
    @settings(max_examples=50)
    def test_compression_preserves_reachability(self, graph, data):
        compressed = ReachabilityPreservingCompression(graph)
        u = data.draw(st.integers(min_value=0, max_value=graph.n - 1))
        v = data.draw(st.integers(min_value=0, max_value=graph.n - 1))
        assert compressed.reachable(u, v) == is_reachable(graph, u, v)

    @given(digraphs(max_n=25))
    @settings(max_examples=50)
    def test_compression_never_grows(self, graph):
        compressed = ReachabilityPreservingCompression(graph)
        assert compressed.compressed_vertices <= graph.n
        assert compressed.compression_ratio() >= 1.0
