"""Property tests: every workload-generated query is answerable (ISSUE 6).

The harness contract: any operation a bound :class:`WorkloadSpec` stream
emits is *valid* against its generating session -- reads answer identically
on the fast path and under the naive reference semantics
(``QueryClass.pair_in_language``), and write batches apply cleanly through
``Dataset.apply_changes``.  Checked across every template-covered kind,
every key distribution, and random seeds; the mutable case interleaves
writes and re-checks reads against the *current* snapshot after each batch.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog import build_query_engine
from repro.workloads import (
    DriftKeys,
    HotspotKeys,
    UniformKeys,
    WorkloadSpec,
    ZipfKeys,
)
from repro.workloads.templates import template_kinds

#: Template-covered kinds actually served by the default catalog.
_KINDS = sorted(set(template_kinds()) & set(build_query_engine().kinds()))

_DISTRIBUTIONS = st.sampled_from(
    [
        UniformKeys(),
        ZipfKeys(1.1),
        ZipfKeys(1.8),
        HotspotKeys(hot_fraction=0.2, hot_weight=0.8),
        DriftKeys(window=0.25, period=7),
    ]
)

#: Kinds whose change templates the mutable engine accepts (reachability's
#: edge inserts are served, but the graph payload re-fingerprints as a full
#: rebuild; it stays in the read-only pass).
_WRITABLE_KINDS = (
    "list-membership",
    "minimum-range-query",
    "point-selection",
    "range-selection",
    "topk-threshold",
)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    size=st.integers(min_value=4, max_value=64),
    seed=st.integers(min_value=0, max_value=2**16),
    distribution=_DISTRIBUTIONS,
    hit_fraction=st.sampled_from([0.0, 0.5, 1.0]),
)
def test_every_generated_read_is_answerable(size, seed, distribution, hit_fraction):
    with build_query_engine() as engine:
        for kind in _KINDS:
            query_class, _ = engine.registration(kind)
            data, _ = query_class.sample_workload(size, seed, 1)
            ds = engine.attach(f"{kind}-ds", data, kinds=[kind])
            spec = WorkloadSpec(
                mix={kind: 1.0},
                distribution=distribution,
                hit_fraction=hit_fraction,
                seed=seed,
            )
            stream = spec.bind(ds).stream(0)
            for _ in range(12):
                op = next(stream)
                fast = ds.query(op.kind, op.query)
                naive = query_class.pair_in_language(data, op.query)
                assert fast == naive, (kind, op.query, hit_fraction)
                # hit_fraction is a guarantee at the extremes for kinds whose
                # miss templates are constructive.  Exceptions: reachability
                # misses are probabilistic by design, and an RMQ window of
                # one element has no wrong argmin position to point at.
                if kind != "reachability":
                    if hit_fraction == 1.0:
                        assert fast is True, (kind, op.query)
                    degenerate_rmq = (
                        kind == "minimum-range-query" and op.query[0] == op.query[1]
                    )
                    if hit_fraction == 0.0 and not degenerate_rmq:
                        assert fast is False, (kind, op.query)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    size=st.integers(min_value=4, max_value=48),
    seed=st.integers(min_value=0, max_value=2**16),
    distribution=_DISTRIBUTIONS,
)
def test_mixed_read_write_streams_stay_answerable(size, seed, distribution):
    """On mutable sessions the stream's writes apply cleanly and reads keep
    agreeing with the naive semantics on the post-write snapshot."""
    with build_query_engine() as engine:
        for kind in _WRITABLE_KINDS:
            query_class, _ = engine.registration(kind)
            data, _ = query_class.sample_workload(size, seed, 1)
            ds = engine.attach(f"{kind}-mut", data, kinds=[kind], mutable=True)
            spec = WorkloadSpec(
                mix={kind: 1.0},
                write_ratio=0.3,
                writes_per_batch=2,
                distribution=distribution,
                seed=seed,
            )
            stream = spec.bind(ds).stream(0)
            writes = 0
            for _ in range(16):
                op = next(stream)
                if op.is_write:
                    ds.apply_changes(op.changes)
                    writes += 1
                    continue
                snapshot = ds.dataset()
                fast = ds.query(op.kind, op.query)
                naive = query_class.pair_in_language(snapshot, op.query)
                assert fast == naive, (kind, op.query, ds.version)
            # write_ratio=0.3 over 16 ops: at least one batch is near-certain;
            # if the rng produced none this example proves nothing new, but
            # the seed sweep keeps the expected count well above zero.
            assert writes >= 0
