"""Unit tests for sharded Pi-structures (ISSUE 2).

Covers the merge-operator algebra, the shard planner (policies, routing,
content-addressed shard artifacts), engine integration (``shards=K``
registration, shard statistics, concurrent scatter-gather), and shard-level
invalidation: change batches must rebuild only the shards they touch.
"""

from __future__ import annotations

import pytest

from repro.catalog import build_query_engine
from repro.core.errors import ServiceError
from repro.incremental.changes import ChangeKind, TupleChange
from repro.queries import (
    membership_class,
    rmq_class,
    sorted_run_scheme,
    tree_lca_class,
    euler_tour_scheme,
)
from repro.service.artifacts import ArtifactStore
from repro.service.engine import QueryEngine, QueryRequest
from repro.service.merge import (
    merge_sorted_desc,
    monoid_merge,
    range_blocks,
    stable_bucket,
    union_merge,
)
from repro.service.sharding import plan_diff, touched_shards

# The raw-payload QueryRequest form used throughout this module is
# deprecated (named sessions are the supported surface); its behavior
# is pinned here on purpose, so silence the migration warning.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

SHARDABLE_KINDS = (
    "point-selection",
    "range-selection",
    "list-membership",
    "minimum-range-query",
    "topk-threshold",
)


# -- merge operators -----------------------------------------------------------


def test_stable_bucket_is_deterministic_and_bounded():
    for value in (0, 17, "x", (1, 2), -5):
        bucket = stable_bucket(value, 8)
        assert 0 <= bucket < 8
        assert bucket == stable_bucket(value, 8)
    with pytest.raises(ValueError):
        stable_bucket(1, 0)


def test_range_blocks_are_balanced_and_cover():
    blocks = range_blocks(10, 4)
    assert blocks == [(0, 3), (3, 3), (6, 2), (8, 2)]
    assert sum(length for _, length in blocks) == 10
    # More shards than slots: empty blocks are omitted.
    assert range_blocks(2, 8) == [(0, 1), (1, 1)]
    assert range_blocks(0, 4) == []
    with pytest.raises(ValueError):
        range_blocks(4, 0)


def test_union_merge_semantics():
    merge = union_merge()
    assert merge.combine([False, True], None) is True
    assert merge.combine([False, False], None) is False
    assert merge.combine([], None) is False
    assert merge.empty(None) is False
    assert merge.partial is None  # the scheme's own evaluator is the partial


def test_monoid_merge_folds_and_skips_identity():
    merge = monoid_merge(
        partial=lambda structure, query, meta, tracker: None,
        fold=min,
        finalize=lambda best, query: best is not None and best == query,
    )
    assert merge.combine([(3, 1), None, (2, 9)], (2, 9)) is True
    assert merge.combine([None, None], (2, 9)) is False  # all-identity folds to None
    assert merge.empty(None) is None


def test_merge_sorted_desc_is_a_kway_merge():
    runs = [[9, 4, 1], [8, 8, 2], [7]]
    assert merge_sorted_desc(runs, 5) == [9, 8, 8, 7, 4]
    assert merge_sorted_desc([], 3) == []


# -- registration --------------------------------------------------------------


def test_shards_require_a_shard_spec():
    engine = QueryEngine()
    with pytest.raises(ServiceError, match="no ShardSpec"):
        engine.register("lca", tree_lca_class(), euler_tour_scheme(), shards=4)
    with pytest.raises(ServiceError, match="shards must be"):
        engine.register("m", membership_class(), sorted_run_scheme(), shards=0)


def test_shardable_kinds_lists_spec_carriers():
    with build_query_engine(shards=4) as engine:
        assert set(SHARDABLE_KINDS) <= set(engine.shardable_kinds())
        for kind in SHARDABLE_KINDS:
            assert engine.stats().per_kind[kind].shards == 4
        # Kinds without a spec silently keep the monolithic path.
        assert engine.stats().per_kind["tree-lca"].shards == 1


# -- serving equivalence and statistics ----------------------------------------


def _workloads(engine, *, size=96, seed=13, per_kind=8):
    requests, expected = [], []
    for kind in SHARDABLE_KINDS:
        query_class, _ = engine.registration(kind)
        data, queries = query_class.sample_workload(size, seed, per_kind)
        for query in queries:
            requests.append(QueryRequest(kind, data, query))
            expected.append(query_class.pair_in_language(data, query))
    return requests, expected


def test_concurrent_sharded_batches_match_sequential(tmp_path):
    """Cold concurrent scatter-gather: no deadlock between the serving pool
    and the shard-build pool, answers identical to sequential and naive."""
    store = ArtifactStore(tmp_path)
    with build_query_engine(store=store, shards=4, max_workers=6) as engine:
        requests, expected = _workloads(engine)
        concurrent = engine.execute_batch(requests)
        sequential = engine.execute_batch(requests, concurrent=False)
        assert concurrent == sequential == expected


def test_shard_stats_track_builds_and_serve_time(tmp_path):
    with build_query_engine(store=ArtifactStore(tmp_path), shards=4) as engine:
        kind = "minimum-range-query"
        query_class, _ = engine.registration(kind)
        data, queries = query_class.sample_workload(64, 7, 6)
        for query in queries:
            engine.execute(QueryRequest(kind, data, query))
        stats = engine.stats().per_kind[kind]
        assert stats.shards == 4
        assert stats.shard_builds == 4  # one build per block, once
        assert stats.builds == 0  # the monolithic path never ran
        assert stats.queries == len(queries)
        assert stats.shard_build_seconds > 0
        assert stats.shard_serve_seconds > 0
        assert stats.serve_seconds >= stats.shard_serve_seconds


def test_second_engine_serves_shards_from_store(tmp_path):
    store = ArtifactStore(tmp_path)
    kind = "topk-threshold"
    with build_query_engine(store=store, shards=4) as first:
        query_class, _ = first.registration(kind)
        data, queries = query_class.sample_workload(64, 3, 6)
        expected = [first.execute(QueryRequest(kind, data, q)) for q in queries]

    with build_query_engine(store=store, shards=4) as second:
        got = [second.execute(QueryRequest(kind, data, q)) for q in queries]
        assert got == expected
        stats = second.stats().per_kind[kind]
        assert stats.shard_builds == 0
        assert stats.shard_store_hits == 4  # every shard loaded, none rebuilt


def test_routed_membership_probes_one_shard():
    with build_query_engine(shards=4) as engine:
        data = tuple(range(256))
        engine.warm("list-membership", data)  # builds all 4 buckets
        engine.reset_stats()
        assert engine.execute(QueryRequest("list-membership", data, 100)) is True
        stats = engine.stats().per_kind["list-membership"]
        # Route-aware resolve: one cache probe, zero builds.
        assert stats.shard_cache_hits == 1
        assert stats.shard_builds == 0


def test_resolve_then_answer_matches_execute_and_keeps_stats_invariant():
    """The resolve()/answer() primitive pair equals execute() and stays
    statistics-neutral (shard_serve_seconds never exceeds serve_seconds)."""
    with build_query_engine(shards=4) as engine:
        kind = "minimum-range-query"
        query_class, _ = engine.registration(kind)
        data, queries = query_class.sample_workload(48, 21, 6)
        registration = engine._registration(kind)
        sharded = engine.resolve(kind, data)  # a full ShardedStructure
        for query in queries:
            assert engine._planner.answer(kind, registration, sharded, query) == \
                engine.execute(QueryRequest(kind, data, query))
        stats = engine.stats().per_kind[kind]
        assert stats.queries == len(queries)  # answer() bumped nothing
        assert stats.serve_seconds >= stats.shard_serve_seconds


def test_empty_shards_answer_correctly():
    with build_query_engine(shards=8) as engine:
        data = (5, 9)  # 8 buckets, at most 2 occupied
        assert engine.execute(QueryRequest("list-membership", data, 5)) is True
        assert engine.execute(QueryRequest("list-membership", data, 6)) is False
        assert engine.stats().per_kind["list-membership"].shard_builds <= 2


def test_numeric_alias_queries_route_like_they_compare():
    """1 == 1.0 == True, so hash routing must co-bucket the aliases; a float
    probe against int data must match the monolithic answer."""
    assert stable_bucket(1, 8) == stable_bucket(1.0, 8) == stable_bucket(True, 8)
    assert stable_bucket((1, 2), 8) == stable_bucket((1.0, 2.0), 8)
    with build_query_engine(shards=4) as sharded, build_query_engine() as mono:
        data = tuple(range(16))
        for probe in (1.0, True, 7, 7.0, 3.5):
            assert (
                sharded.execute(QueryRequest("list-membership", data, probe))
                == mono.execute(QueryRequest("list-membership", data, probe))
            ), probe


def test_sharded_rmq_rejects_malformed_windows_like_monolithic():
    from repro.core.errors import IndexError_

    with build_query_engine(shards=4) as engine:
        data = tuple(range(8))
        with pytest.raises(IndexError_, match="bad RMQ range"):
            engine.execute(QueryRequest("minimum-range-query", data, (0, 100, 0)))
        with pytest.raises(IndexError_, match="bad RMQ range"):
            engine.execute(QueryRequest("minimum-range-query", data, (5, 2, 3)))


def test_sharded_topk_rejects_invalid_k_like_monolithic():
    with build_query_engine(shards=4) as engine:
        data = tuple((i, 100 - i) for i in range(16))
        with pytest.raises(ValueError, match="bad top-k"):
            engine.execute(QueryRequest("topk-threshold", data, ((1, 1), 0, 5)))


# -- shard-level invalidation --------------------------------------------------


def test_point_change_rebuilds_only_its_block():
    """Range policy: an in-place point write leaves K-1 block artifacts warm."""
    with build_query_engine(shards=4) as engine:
        kind = "minimum-range-query"
        query_class, scheme = engine.registration(kind)
        data, queries = query_class.sample_workload(64, 11, 4)
        engine.warm(kind, data)
        assert engine.stats().per_kind[kind].shard_builds == 4

        changed = list(data)
        changed[20] = changed[20] - 1000  # block 1 of 4 (offsets 16..31)
        changed = tuple(changed)
        registration = engine._registration(kind)
        old_plan = engine._planner.plan(kind, registration, data, engine._fingerprint(data))
        new_plan = engine._planner.plan(kind, registration, changed, engine._fingerprint(changed))
        reused, rebuilt = plan_diff(old_plan, new_plan)
        assert rebuilt == {1} and reused == {0, 2, 3}
        # The spec's change router predicts the same shard.
        assert touched_shards(old_plan, [20], scheme.sharding) == {1}

        engine.warm(kind, changed)
        assert engine.stats().per_kind[kind].shard_builds == 5  # one rebuild, not four
        for query in queries:
            assert engine.execute(QueryRequest(kind, changed, query)) == \
                query_class.pair_in_language(changed, query)


def test_tuple_change_batch_rebuilds_only_touched_relation_shards():
    """Hash policy: an incremental TupleChange batch routes to its buckets."""
    with build_query_engine(shards=4) as engine:
        kind = "point-selection"
        query_class, scheme = engine.registration(kind)
        data, _ = query_class.sample_workload(80, 5, 1)
        engine.warm(kind, data)
        cold_builds = engine.stats().per_kind[kind].shard_builds
        assert cold_builds == 4

        row = (123456, 654321)
        changes = [TupleChange(ChangeKind.INSERT, row)]
        registration = engine._registration(kind)
        old_plan = engine._planner.plan(kind, registration, data, engine._fingerprint(data))
        predicted = touched_shards(old_plan, changes, scheme.sharding)
        assert len(predicted) == 1

        data.insert(row)
        engine.invalidate(data)  # in-place mutation contract
        engine.warm(kind, data)
        stats = engine.stats().per_kind[kind]
        assert stats.shard_builds == cold_builds + len(predicted)
        assert engine.execute(QueryRequest(kind, data, ("a", 123456))) is True


def test_touched_shards_degrades_to_all_without_locate():
    with build_query_engine(shards=4) as engine:
        kind = "minimum-range-query"
        registration = engine._registration(kind)
        data = tuple(range(32))
        plan = engine._planner.plan(kind, registration, data, engine._fingerprint(data))
        spec = registration.scheme.sharding
        # An unroutable change (not an array position) is conservative.
        assert touched_shards(plan, ["not-a-position"], spec) == {0, 1, 2, 3}


def test_invalidate_drops_shard_plans_for_mutated_lists():
    with build_query_engine(shards=4) as engine:
        kind = "list-membership"
        data = [1, 2, 3]
        assert engine.execute(QueryRequest(kind, data, 4)) is False
        data.append(4)
        engine.invalidate(data)
        assert engine.execute(QueryRequest(kind, data, 4)) is True
