"""Unit tests for the work--depth cost model (repro.core.cost)."""

from repro.core.cost import NULL_TRACKER, Cost, CostTracker, NullTracker, ensure_tracker


class TestCost:
    def test_then_adds_both(self):
        assert Cost(3, 2).then(Cost(4, 5)) == Cost(7, 7)

    def test_beside_sums_work_maxes_depth(self):
        assert Cost(3, 2).beside(Cost(4, 5)) == Cost(7, 5)

    def test_add_operator_is_sequential(self):
        assert Cost(1, 1) + Cost(2, 2) == Cost(3, 3)

    def test_truthiness(self):
        assert not Cost()
        assert Cost(1, 0)
        assert Cost(0, 1)


class TestCostTracker:
    def test_tick_defaults_depth_to_work(self):
        tracker = CostTracker()
        tracker.tick(5)
        assert tracker.snapshot() == Cost(5, 5)

    def test_tick_with_explicit_depth(self):
        tracker = CostTracker()
        tracker.tick(work=100, depth=3)
        assert tracker.snapshot() == Cost(100, 3)

    def test_parallel_folds_sum_and_max(self):
        tracker = CostTracker()
        tracker.parallel([Cost(10, 4), Cost(20, 7), Cost(5, 2)], overhead=1)
        assert tracker.snapshot() == Cost(36, 8)

    def test_parallel_of_nothing_charges_overhead_only(self):
        tracker = CostTracker()
        tracker.parallel([], overhead=1)
        assert tracker.snapshot() == Cost(1, 1)

    def test_fork_is_independent(self):
        tracker = CostTracker()
        branch = tracker.fork()
        branch.tick(10)
        assert tracker.snapshot() == Cost(0, 0)
        assert branch.snapshot() == Cost(10, 10)

    def test_measure_reports_delta(self):
        tracker = CostTracker()
        tracker.tick(5)
        with tracker.measure() as measurement:
            tracker.tick(7)
        assert measurement.cost == Cost(7, 7)
        assert tracker.snapshot() == Cost(12, 12)

    def test_reset(self):
        tracker = CostTracker()
        tracker.tick(5)
        tracker.reset()
        assert tracker.snapshot() == Cost(0, 0)


class TestNullTracker:
    def test_ignores_charges(self):
        tracker = NullTracker()
        tracker.tick(100)
        tracker.charge(Cost(5, 5))
        tracker.parallel([Cost(1, 1)])
        assert tracker.snapshot() == Cost(0, 0)

    def test_fork_returns_self(self):
        assert NULL_TRACKER.fork() is NULL_TRACKER

    def test_parallel_drains_lazy_iterables(self):
        # Branch work must still execute when tracking is off.
        executed = []

        def branches():
            for index in range(3):
                executed.append(index)
                yield Cost(1, 1)

        NULL_TRACKER.parallel(branches())
        assert executed == [0, 1, 2]

    def test_ensure_tracker(self):
        assert ensure_tracker(None) is NULL_TRACKER
        real = CostTracker()
        assert ensure_tracker(real) is real
