"""Unit tests for alternating graph accessibility (AGAP extension)."""

import random

import pytest

from repro.core import CostTracker
from repro.core.errors import GraphError
from repro.graphs import Digraph
from repro.graphs.alternating import (
    AlternatingDigraph,
    AlternatingReachabilityIndex,
    alternating_reachable,
    random_alternating_digraph,
)
from repro.queries import agap_class, winning_set_scheme


def labelled(n, edges, universal):
    graph = Digraph(n)
    for u, v in edges:
        graph.add_edge(u, v)
    return AlternatingDigraph(graph, universal)


class TestSemantics:
    def test_reflexive(self):
        agraph = labelled(2, [], [False, True])
        assert alternating_reachable(agraph, 0, 0)
        assert alternating_reachable(agraph, 1, 1)
        assert not alternating_reachable(agraph, 0, 1)

    def test_existential_needs_one_path(self):
        # 0 (OR) -> 1, 0 -> 2; only 1 reaches t=1.
        agraph = labelled(3, [(0, 1), (0, 2)], [False] * 3)
        assert alternating_reachable(agraph, 0, 1)
        assert alternating_reachable(agraph, 0, 2)

    def test_universal_needs_all_successors(self):
        # 0 (AND) -> 1, 0 -> 2; target 1: successor 2 does not reach 1.
        agraph = labelled(3, [(0, 1), (0, 2)], [True, False, False])
        assert not alternating_reachable(agraph, 0, 1)
        # But if 2 -> 1 exists, both successors reach 1.
        agraph2 = labelled(3, [(0, 1), (0, 2), (2, 1)], [True, False, False])
        assert alternating_reachable(agraph2, 0, 1)

    def test_universal_sink_fails(self):
        # A universal vertex with no successors reaches only itself.
        agraph = labelled(2, [], [True, False])
        assert alternating_reachable(agraph, 0, 0)
        assert not alternating_reachable(agraph, 0, 1)

    def test_all_existential_equals_plain_reachability(self):
        from repro.graphs import gnm_digraph, is_reachable

        rng = random.Random(400)
        for _ in range(10):
            graph = gnm_digraph(25, 60, rng)
            agraph = AlternatingDigraph(graph, [False] * 25)
            for _ in range(40):
                u, v = rng.randrange(25), rng.randrange(25)
                assert alternating_reachable(agraph, u, v) == is_reachable(
                    graph, u, v
                )

    def test_universal_is_restriction(self):
        # Making vertices universal can only destroy accessibility.
        rng = random.Random(401)
        for _ in range(10):
            agraph = random_alternating_digraph(20, 50, rng)
            plain = AlternatingDigraph(agraph.graph, [False] * 20)
            for _ in range(30):
                u, v = rng.randrange(20), rng.randrange(20)
                if alternating_reachable(agraph, u, v):
                    assert alternating_reachable(plain, u, v)

    def test_vertex_bounds(self):
        agraph = labelled(2, [], [False, False])
        with pytest.raises(GraphError):
            alternating_reachable(agraph, 0, 9)

    def test_label_vector_length_checked(self):
        with pytest.raises(GraphError):
            AlternatingDigraph(Digraph(3), [False])


class TestIndex:
    def test_matches_per_query_fixpoint(self):
        rng = random.Random(402)
        for _ in range(8):
            agraph = random_alternating_digraph(30, 80, rng)
            index = AlternatingReachabilityIndex(agraph)
            for _ in range(60):
                u, v = rng.randrange(30), rng.randrange(30)
                assert index.reachable(u, v) == alternating_reachable(agraph, u, v)

    def test_query_cost_constant(self):
        rng = random.Random(403)
        index = AlternatingReachabilityIndex(random_alternating_digraph(150, 400, rng))
        tracker = CostTracker()
        index.reachable(3, 140, tracker)
        assert tracker.depth == 1


class TestQueryClass:
    def test_scheme_agrees_with_naive(self):
        query_class = agap_class()
        scheme = winning_set_scheme()
        data, queries = query_class.sample_workload(64, seed=17, query_count=30)
        preprocessed = scheme.preprocess(data, CostTracker())
        for query in queries:
            assert scheme.answer(preprocessed, query, CostTracker()) == (
                query_class.pair_in_language(data, query)
            )

    def test_workload_mixes_answers(self):
        query_class = agap_class()
        data, queries = query_class.sample_workload(64, seed=18, query_count=40)
        answers = {query_class.pair_in_language(data, q) for q in queries}
        assert answers == {True, False}
