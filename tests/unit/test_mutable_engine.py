"""Unit tests for the mutable-dataset write path (ISSUE 3).

Headliners:

* ``test_readers_never_observe_torn_snapshot`` -- N reader threads race one
  writer applying invariant-preserving batches; every batch-atomic read must
  be consistent with some fully-applied version.
* ``test_delta_equals_full_rebuild_*`` -- after a change batch, the
  delta-maintained structure answers exactly like a from-scratch build over
  the post-batch dataset, for every delta-capable kind.
* ``test_invalidate_evicts_build_locks`` -- the regression guard for the
  per-key build-lock leak under invalidation churn.
"""

from __future__ import annotations

import threading

import pytest

from repro.catalog import build_query_engine
from repro.core.errors import DeltaError, ServiceError
from repro.graphs.graph import Digraph
from repro.incremental.changes import ChangeKind, EdgeChange, PointWrite, TupleChange
from repro.queries import membership_class, sorted_run_scheme
from repro.service import ArtifactStore
from repro.service.engine import QueryEngine, QueryRequest
from repro.service.mutable import SnapshotLatch

# The raw-payload QueryRequest form used throughout this module is
# deprecated (named sessions are the supported surface); its behavior
# is pinned here on purpose, so silence the migration warning.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _insert(*row):
    return TupleChange(ChangeKind.INSERT, tuple(row))


def _delete(*row):
    return TupleChange(ChangeKind.DELETE, tuple(row))


# -- snapshot consistency under concurrency ------------------------------------


def test_readers_never_observe_torn_snapshot():
    """4 readers + 1 writer: the dataset always contains exactly one of
    {LEFT, RIGHT} (each batch deletes one and inserts the other atomically),
    so a batch-atomic read must never see both or neither."""
    LEFT, RIGHT, BATCHES = 10_001, 10_002, 150
    with QueryEngine() as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        handle = engine.open_dataset("membership", tuple(range(64)) + (LEFT,))
        violations = []
        done = threading.Event()

        def read_loop():
            while not done.is_set():
                left, right = handle.query_batch([LEFT, RIGHT])
                if left == right:
                    violations.append((left, right, handle.version))

        readers = [threading.Thread(target=read_loop) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            for step in range(BATCHES):
                if step % 2 == 0:
                    handle.apply_changes([_delete(LEFT), _insert(RIGHT)])
                else:
                    handle.apply_changes([_delete(RIGHT), _insert(LEFT)])
        finally:
            done.set()
            for thread in readers:
                thread.join()
        assert not violations, f"torn snapshots observed: {violations[:5]}"
        assert handle.version == BATCHES
        stats = engine.stats().per_kind["membership"]
        assert stats.delta_batches == BATCHES


def test_snapshot_latch_excludes_writer_during_reads():
    latch = SnapshotLatch()
    order = []
    with latch.read():
        writer_entered = threading.Event()

        def writer():
            with latch.write():
                order.append("writer")
                writer_entered.set()

        thread = threading.Thread(target=writer)
        thread.start()
        assert not writer_entered.wait(0.05)  # writer blocked by the reader
        order.append("reader-done")
    thread.join()
    assert order == ["reader-done", "writer"]


# -- delta-apply equals full rebuild, per kind ---------------------------------


def _equivalence_check(engine, kind, handle, queries):
    """Handle answers == naive oracle == fresh engine built on the snapshot."""
    query_class, _ = engine.registration(kind)
    snapshot = handle.dataset()
    for query in queries:
        expected = query_class.pair_in_language(snapshot, query)
        assert handle.query(query) == expected, (kind, query)
        assert engine.execute(QueryRequest(kind, snapshot, query)) == expected


@pytest.mark.parametrize("shards", [1, 4])
def test_delta_equals_full_rebuild_membership(shards):
    with build_query_engine(shards=shards) as engine:
        kind = "list-membership"
        query_class, _ = engine.registration(kind)
        data, queries = query_class.sample_workload(96, 3, 10)
        handle = engine.open_dataset(kind, data)
        handle.apply_changes(
            [_insert(10**6), _insert(data[0]), _delete(data[1]), _delete(-1)]
        )
        _equivalence_check(engine, kind, handle, list(queries) + [10**6, data[1]])
        stats = engine.stats().per_kind[kind]
        if shards == 1:
            assert stats.delta_batches == 1 and stats.fallback_rebuilds == 0
        else:
            # Sharded kinds fall back to the touched-shard rebuild of PR 2.
            assert stats.fallback_rebuilds == 1


def test_delta_equals_full_rebuild_selection():
    with build_query_engine() as engine:
        for kind in ("point-selection", "range-selection"):
            query_class, _ = engine.registration(kind)
            data, queries = query_class.sample_workload(64, 5, 10)
            handle = engine.open_dataset(kind, data)
            victim = data.rows()[0]
            handle.apply_changes([_delete(*victim), _insert(7, 7), _insert(7, 7)])
            extra = [("a", 7), ("b", 7)] if kind == "point-selection" else [("a", 6, 8)]
            _equivalence_check(engine, kind, handle, list(queries) + extra)
            stats = engine.stats().per_kind[kind]
            assert stats.delta_batches == 1 and stats.fallback_rebuilds == 0


def test_delta_equals_full_rebuild_rmq():
    with build_query_engine() as engine:
        kind = "minimum-range-query"
        query_class, _ = engine.registration(kind)
        data, queries = query_class.sample_workload(80, 9, 10)
        handle = engine.open_dataset(kind, data)
        handle.apply_changes([PointWrite(0, -10**6), PointWrite(41, 10**6)])
        extra = [(0, len(data) - 1, 0), (1, 50, 41)]
        _equivalence_check(engine, kind, handle, list(queries) + extra)
        assert engine.stats().per_kind[kind].delta_batches == 1


def test_delta_equals_full_rebuild_topk():
    with build_query_engine() as engine:
        kind = "topk-threshold"
        query_class, _ = engine.registration(kind)
        data, queries = query_class.sample_workload(48, 11, 10)
        handle = engine.open_dataset(kind, data)
        handle.apply_changes(
            [_insert(2000, 2000), _delete(*data[0]), _delete(9999, 9999)]
        )
        extra = [((1, 1), 1, 3999), ((1, 1), 1, 4001)]
        _equivalence_check(engine, kind, handle, list(queries) + extra)
        assert engine.stats().per_kind[kind].delta_batches == 1


def test_delta_equals_full_rebuild_reachability():
    with build_query_engine() as engine:
        kind = "reachability"
        graph = Digraph(24, [(u, u + 1) for u in range(0, 22, 2)])
        handle = engine.open_dataset(kind, graph)
        handle.apply_changes(
            [
                EdgeChange(ChangeKind.INSERT, 1, 2),
                EdgeChange(ChangeKind.INSERT, 3, 4),
                EdgeChange(ChangeKind.INSERT, 5, 0),  # closes a cycle
            ]
        )
        probes = [(0, 6), (0, 23), (5, 1), (4, 0), (7, 7)]
        _equivalence_check(engine, kind, handle, probes)
        stats = engine.stats().per_kind[kind]
        assert stats.delta_batches == 1 and stats.fallback_rebuilds == 0
        # Deletes are outside the insert-only closure maintenance: fall back.
        handle.apply_changes([EdgeChange(ChangeKind.DELETE, 5, 0)])
        _equivalence_check(engine, kind, handle, probes)
        assert engine.stats().per_kind[kind].fallback_rebuilds == 1


def test_sharded_fallback_rebuilds_only_touched_shards(tmp_path):
    with build_query_engine(store=ArtifactStore(tmp_path), shards=8) as engine:
        kind = "list-membership"
        data = tuple(range(256))
        handle = engine.open_dataset(kind, data)
        engine.warm(kind, data)  # every shard hot
        before = engine.stats().per_kind[kind]
        handle.apply_changes([_insert(100_000)])
        after = engine.stats().per_kind[kind]
        assert after.fallback_rebuilds - before.fallback_rebuilds == 1
        # A single inserted element lands in one hash bucket: one shard built.
        assert after.shard_builds - before.shard_builds == 1
        assert handle.query(100_000) is True and handle.query(99_999) is False


# -- versioning and write-behind persistence -----------------------------------


def test_versioned_write_behind_persistence(tmp_path):
    store = ArtifactStore(tmp_path)
    with QueryEngine(store=store) as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        handle = engine.open_dataset("membership", (1, 2, 3))
        base_key = handle.artifact_key()
        assert handle.version == 0 and not handle.dirty
        handle.apply_changes([_insert(42)])
        assert handle.version == 1
        handle.flush()
        assert not handle.dirty
        key = handle.artifact_key()
        assert key != base_key  # version folded into the fingerprint
        payload = store.get(key)
        assert payload is not None
        reloaded = sorted_run_scheme().load(payload)
        assert reloaded.contains(42) and not reloaded.contains(43)


def test_close_flushes_and_detaches(tmp_path):
    store = ArtifactStore(tmp_path)
    engine = QueryEngine(store=store)
    engine.register("membership", membership_class(), sorted_run_scheme())
    handle = engine.open_dataset("membership", (1, 2, 3))
    handle.apply_changes([_insert(7)])
    engine.close()  # closes (and flushes) the handle too
    assert handle.closed
    assert store.get(handle.artifact_key()) is not None
    with pytest.raises(ServiceError, match="closed"):
        handle.query(7)
    with pytest.raises(ServiceError, match="closed"):
        handle.apply_changes([_insert(8)])


def test_noop_and_malformed_batches_are_atomic():
    with QueryEngine() as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        handle = engine.open_dataset("membership", (1, 2, 3))
        # Deletes of absent elements screen to a no-op: no version bump.
        handle.apply_changes([_delete(99)])
        assert handle.version == 0
        # A malformed change rejects the whole batch before anything applies.
        with pytest.raises(DeltaError):
            handle.apply_changes([_insert(5), TupleChange(ChangeKind.INSERT, (1, 2))])
        assert handle.version == 0 and handle.query(5) is False
        with pytest.raises(DeltaError):
            handle.apply_changes([PointWrite(99, 5)])  # out of range
        assert handle.version == 0


def test_open_dataset_leaves_caller_object_untouched():
    with QueryEngine() as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        data = (1, 2, 3)
        handle = engine.open_dataset("membership", data)
        handle.apply_changes([_insert(4), _delete(1)])
        assert data == (1, 2, 3)
        assert handle.dataset() == (2, 3, 4)
        # The engine's ordinary read path over the original data is unaffected.
        assert engine.execute(QueryRequest("membership", data, 1)) is True
        assert engine.execute(QueryRequest("membership", data, 4)) is False


def test_handle_mutations_do_not_corrupt_engine_cache():
    """The handle privatizes its structure: serving the same dataset through
    the plain engine path after handle mutations must still match the
    original content (the cached artifact was never mutated in place)."""
    with QueryEngine() as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        data = tuple(range(32))
        assert engine.execute(QueryRequest("membership", data, 31)) is True  # cache it
        handle = engine.open_dataset("membership", data)
        handle.apply_changes([_delete(31)])
        assert handle.query(31) is False
        assert engine.execute(QueryRequest("membership", data, 31)) is True


# -- the build-lock leak regression (ISSUE 3 satellite fix) --------------------


def test_invalidate_evicts_build_locks():
    engine = QueryEngine()
    engine.register("membership", membership_class(), sorted_run_scheme())
    data = [1, 2, 3]
    key = engine.artifact_key("membership", data)
    # Simulate a lock entry parked by an interrupted resolve.
    engine._build_lock(key)
    assert key in engine._build_locks
    engine.invalidate(data)
    assert key not in engine._build_locks


def test_build_lock_map_stays_empty_under_churn():
    with build_query_engine(max_workers=4) as engine:
        data = list(range(16))
        for round_number in range(25):
            requests = [
                QueryRequest("list-membership", data, value) for value in range(8)
            ]
            engine.execute_batch(requests)
            data.append(100 + round_number)
            engine.invalidate(data)
        assert engine._build_locks == {}


def test_point_writes_keep_delete_screening_in_step():
    """Regression: a PointWrite swaps one bag element for another, so later
    deletes of the old/new values must screen correctly (review finding)."""
    with QueryEngine() as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        handle = engine.open_dataset("membership", (1, 2, 3))
        # PointWrite is outside the sorted-run hook vocabulary: falls back,
        # but the bag counts must still track the overwrite.
        handle.apply_changes([PointWrite(0, 99), PointWrite(0, 98)])
        assert handle.dataset() == (98, 2, 3)
        handle.apply_changes([_delete(98)])  # the new value is deletable
        assert handle.query(98) is False
        version = handle.version
        handle.apply_changes([_delete(1)])  # the overwritten value is gone
        assert handle.version == version  # screened as a no-op
        assert handle.query(2) is True and handle.query(1) is False


def test_divergent_histories_never_share_versioned_artifacts(tmp_path):
    """Regression: two handles over equal base data but different change
    histories must persist under distinct keys (review finding)."""
    store = ArtifactStore(tmp_path)
    with QueryEngine(store=store) as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        first = engine.open_dataset("membership", (1, 2, 3))
        second = engine.open_dataset("membership", (1, 2, 3))
        assert first.artifact_key() == second.artifact_key()  # same v0 content
        first.apply_changes([_insert(500)])
        second.apply_changes([_insert(777)])
        assert first.artifact_key() != second.artifact_key()
        first.flush()
        second.flush()
        reloaded = sorted_run_scheme().load(store.get(first.artifact_key()))
        assert reloaded.contains(500) and not reloaded.contains(777)
        # Identical histories converge to the same key (safe overwrite).
        third = engine.open_dataset("membership", (1, 2, 3))
        third.apply_changes([_insert(500)])
        assert third.artifact_key() == first.artifact_key()


def test_changelog_counts_each_change_once():
    with QueryEngine() as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        handle = engine.open_dataset("membership", (1, 2, 3))
        handle.apply_changes([_delete(42)])  # fully screened
        assert handle.log.input_changes == 1
        handle.apply_changes([_insert(5), _delete(43)])  # partially screened
        assert handle.log.input_changes == 3


def test_open_dataset_unknown_kind_and_unsupported_data():
    with QueryEngine() as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        with pytest.raises(ServiceError, match="no scheme registered"):
            engine.open_dataset("nope", (1, 2))
        with pytest.raises(ServiceError, match="mutable serving supports"):
            engine.open_dataset("membership", {"a", "set"})


# -- write-behind failures surface loudly (ISSUE 7 satellite) ------------------


def _break_store(store):
    """Make every put fail like a full disk; returns the undo callable."""
    original = store.put

    def failing_put(key, payload):
        raise OSError(28, "No space left on device (injected)")

    store.put = failing_put
    return lambda: setattr(store, "put", original)


def test_handle_flush_reraises_terminal_writebehind_error(tmp_path):
    """A dead store must not silently strand a dirty version: flush()
    raises WriteBehindError with the store failure as the cause, while the
    in-memory structure keeps serving the current version."""
    from repro.core.errors import WriteBehindError
    from repro.service.faults import FaultPlan, RecoveryPolicy

    engine = QueryEngine(store=ArtifactStore(tmp_path))
    engine.register("membership", membership_class(), sorted_run_scheme())
    handle = engine.open_dataset("membership", (1, 2, 3))
    restore = _break_store(engine._store)
    # Fast retries: the broken store is the point, not the backoff.
    # An empty plan injects nothing; arming it just swaps in fast retries.
    fast = FaultPlan([], policy=RecoveryPolicy(
        writebehind_attempts=2, writebehind_backoff_seconds=0.001))
    with fast.armed():
        handle.apply_changes([_insert(9)])
        with pytest.raises(WriteBehindError) as excinfo:
            handle.flush()
    assert isinstance(excinfo.value.__cause__, OSError)
    assert handle.query(9)  # memory stays current; only durability lagged
    assert engine.stats().per_kind["membership"].writebehind_failures >= 1
    restore()
    handle.flush()  # store healed: the stored error clears
    handle.close()
    engine.close()


def test_handle_close_reraises_writebehind_error_but_still_detaches(tmp_path):
    from repro.core.errors import WriteBehindError
    from repro.service.faults import FaultPlan, RecoveryPolicy

    engine = QueryEngine(store=ArtifactStore(tmp_path))
    engine.register("membership", membership_class(), sorted_run_scheme())
    handle = engine.open_dataset("membership", (1, 2, 3))
    _break_store(engine._store)
    fast = FaultPlan([], policy=RecoveryPolicy(
        writebehind_attempts=1, writebehind_backoff_seconds=0.001))
    with fast.armed():
        handle.apply_changes([_insert(9)])
        with pytest.raises(WriteBehindError):
            handle.close()
    assert handle.closed  # shutdown never wedges on a dead store
    with pytest.raises(ServiceError):
        handle.query(9)
    engine.close()  # the handle was forgotten: engine teardown is clean


def test_engine_close_surfaces_session_writebehind_error_and_still_closes(tmp_path):
    """Mutable Dataset sessions propagate the same way: detach-at-close
    flushes, and a terminal store failure escapes engine.close() *after*
    the full teardown finished."""
    from repro.core.errors import WriteBehindError
    from repro.service.faults import FaultPlan, RecoveryPolicy

    engine = QueryEngine(store=ArtifactStore(tmp_path))
    engine.register("membership", membership_class(), sorted_run_scheme())
    ds = engine.attach("events", (1, 2, 3), kinds=["membership"], mutable=True)
    assert ds.query("membership", 2)
    _break_store(engine._store)
    fast = FaultPlan([], policy=RecoveryPolicy(
        writebehind_attempts=1, writebehind_backoff_seconds=0.001))
    with fast.armed():
        ds.apply_changes([_insert(9)])
        assert ds.query("membership", 9)
        with pytest.raises(WriteBehindError):
            engine.close()
    assert engine._closed  # teardown completed before the error escaped
