"""Unit tests for materialized views and rewriting (Section 4(6))."""

import random

import pytest

from repro.core.cost import CostTracker
from repro.core.errors import ViewError
from repro.storage.relation import uniform_int_relation
from repro.views import (
    MaterializedView,
    ViewDefinition,
    ViewSet,
    answer_with_views,
    rewrite_point,
    rewrite_range,
)


@pytest.fixture
def relation():
    return uniform_int_relation(800, random.Random(60), value_range=(0, 499))


class TestViewDefinition:
    def test_coverage_predicates(self):
        definition = ViewDefinition("v", "a", 10, 19)
        assert definition.covers_point(10) and definition.covers_point(19)
        assert not definition.covers_point(20)
        assert definition.overlaps_range(15, 30)
        assert not definition.overlaps_range(20, 30)
        assert definition.contains_range(11, 18)
        assert not definition.contains_range(5, 18)


class TestMaterializedView:
    def test_holds_only_matching_rows(self, relation):
        definition = ViewDefinition("v", "a", 0, 99)
        view = MaterializedView(definition, relation)
        expected = sum(1 for row in relation.rows() if 0 <= row[0] <= 99)
        assert len(view) == expected

    def test_point_probe(self, relation):
        view = MaterializedView(ViewDefinition("v", "a", 0, 499), relation)
        present = set(relation.column("a"))
        assert view.point_nonempty(next(iter(present)))
        assert not view.point_nonempty(9999)


class TestViewSet:
    def test_partition_covers_whole_range(self, relation):
        views = ViewSet.partition(relation, "a", (0, 499), 7)
        assert views.views[0].definition.low == 0
        assert views.views[-1].definition.high == 499
        # Buckets tile without gaps.
        for left, right in zip(views.views, views.views[1:]):
            assert right.definition.low == left.definition.high + 1

    def test_covering_views_rejects_gaps(self, relation):
        views = ViewSet.partition(relation, "a", (0, 499), 4)
        with pytest.raises(ViewError):
            views.covering_views(400, 600)  # beyond materialized range

    def test_mixed_attributes_rejected(self, relation):
        a_view = MaterializedView(ViewDefinition("v1", "a", 0, 499), relation)
        b_view = MaterializedView(ViewDefinition("v2", "b", 0, 499), relation)
        with pytest.raises(ViewError):
            ViewSet([a_view, b_view])

    def test_empty_viewset_rejected(self):
        with pytest.raises(ViewError):
            ViewSet([])

    def test_bad_partition_parameters(self, relation):
        with pytest.raises(ViewError):
            ViewSet.partition(relation, "a", (10, 5), 3)


class TestRewriting:
    def test_point_rewrite_touches_one_view(self, relation):
        views = ViewSet.partition(relation, "a", (0, 499), 10)
        rewritten = rewrite_point(views, 123)
        assert len(rewritten.probes) == 1
        view, low, high = rewritten.probes[0]
        assert low == high == 123
        assert view.definition.covers_point(123)

    def test_range_rewrite_clips_probes(self, relation):
        views = ViewSet.partition(relation, "a", (0, 499), 10)
        rewritten = rewrite_range(views, 95, 155)
        for view, low, high in rewritten.probes:
            assert view.definition.low <= low <= high <= view.definition.high
        covered = sorted((low, high) for _, low, high in rewritten.probes)
        assert covered[0][0] == 95 and covered[-1][1] == 155

    def test_answers_match_scan(self, relation):
        views = ViewSet.partition(relation, "a", (0, 499), 10)
        column = set(relation.column("a"))
        rng = random.Random(61)
        for _ in range(150):
            low = rng.randrange(0, 500)
            high = min(499, low + rng.randrange(0, 30))
            expected = any(low <= value <= high for value in column)
            assert answer_with_views(views, low, high) == expected

    def test_view_answering_is_sublinear(self, relation):
        views = ViewSet.partition(relation, "a", (0, 499), 10)
        tracker = CostTracker()
        answer_with_views(views, 100, 103, tracker)
        assert tracker.work < len(relation) // 4
