"""Unit tests for the graph substrate, centrally the BDS semantics."""

import random

import pytest

from repro.core.cost import CostTracker
from repro.core.errors import GraphError
from repro.graphs import (
    Digraph,
    Graph,
    bfs_order,
    breadth_depth_search,
    breadth_depth_search_reference,
    condensation,
    dfs_order,
    gnm_digraph,
    gnm_graph,
    is_dag,
    is_reachable,
    permute_vertices,
    random_connected_graph,
    random_dag,
    random_tree,
    reachable_from,
    social_digraph,
    strongly_connected_components,
    topological_order,
    visit_position,
)


class TestGraphBasics:
    def test_undirected_edges_are_symmetric(self):
        graph = Graph(3)
        graph.add_edge(0, 2)
        assert graph.has_edge(0, 2) and graph.has_edge(2, 0)
        assert list(graph.edges()) == [(0, 2)]
        assert graph.edge_count == 1

    def test_directed_edges_are_not(self):
        graph = Digraph(3)
        graph.add_edge(0, 2)
        assert graph.has_edge(0, 2) and not graph.has_edge(2, 0)

    def test_duplicate_edges_ignored(self):
        graph = Graph(2)
        graph.add_edge(0, 1)
        graph.add_edge(0, 1)
        assert graph.edge_count == 1

    def test_neighbors_sorted(self):
        graph = Graph(5)
        for v in (4, 1, 3):
            graph.add_edge(0, v)
        assert list(graph.neighbors(0)) == [1, 3, 4]

    def test_vertex_bounds_checked(self):
        graph = Graph(2)
        with pytest.raises(GraphError):
            graph.add_edge(0, 2)
        with pytest.raises(GraphError):
            graph.neighbors(-1)

    def test_encode_decode_roundtrip(self):
        graph = Digraph(4)
        graph.add_edge(0, 3)
        graph.add_edge(2, 1)
        decoded = Digraph.decode(graph.encode())
        assert decoded == graph

    def test_reversed(self):
        graph = Digraph(3)
        graph.add_edge(0, 1)
        reverse = graph.reversed()
        assert reverse.has_edge(1, 0) and not reverse.has_edge(0, 1)

    def test_permute_vertices(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        permuted = permute_vertices(graph, [2, 0, 1])
        assert permuted.has_edge(2, 0)
        with pytest.raises(GraphError):
            permute_vertices(graph, [0, 0, 1])


class TestBDS:
    def test_paper_semantics_small_example(self):
        # Star with center 0 and leaves 1,2,3; leaf 1 also joined to 4.
        graph = Graph(5)
        for leaf in (1, 2, 3):
            graph.add_edge(0, leaf)
        graph.add_edge(1, 4)
        # Expand 0: visit 1,2,3 (ascending).  Stack top = 1; expand 1: visit
        # 4.  Then 4, 2, 3 have nothing fresh.
        assert breadth_depth_search(graph) == [0, 1, 2, 3, 4]

    def test_breadth_before_depth(self):
        # 0-1, 0-2, 1-3: plain DFS would visit 3 before 2; BDS visits all of
        # 0's children first.
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        graph.add_edge(1, 3)
        assert breadth_depth_search(graph) == [0, 1, 2, 3]
        assert dfs_order(graph, 0) == [0, 1, 3, 2]

    def test_stack_resumption_order(self):
        # After exhausting the subtree under the smallest child, the search
        # resumes from the stack, not from the queue (contrast with BFS).
        graph = Graph(6)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        graph.add_edge(1, 3)
        graph.add_edge(3, 4)
        graph.add_edge(2, 5)
        assert breadth_depth_search(graph) == [0, 1, 2, 3, 4, 5]

    def test_disconnected_graph_restarts_at_smallest_unvisited(self):
        graph = Graph(4)
        graph.add_edge(2, 3)
        assert breadth_depth_search(graph) == [0, 1, 2, 3]

    def test_matches_reference_on_random_graphs(self):
        rng = random.Random(6)
        for _ in range(60):
            n = rng.randint(1, 32)
            graph = Graph(n)
            for _ in range(rng.randint(0, 3 * n)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    graph.add_edge(u, v)
            assert breadth_depth_search(graph) == breadth_depth_search_reference(
                graph
            )

    def test_order_is_a_permutation(self):
        rng = random.Random(7)
        graph = random_connected_graph(50, 20, rng)
        order = breadth_depth_search(graph)
        assert sorted(order) == list(range(50))

    def test_numbering_matters(self):
        # Renumbering the graph changes the induced search order.
        rng = random.Random(8)
        graph = random_connected_graph(30, 15, rng)
        permuted = permute_vertices(graph, random.Random(9).sample(range(30), 30))
        assert breadth_depth_search(graph) != breadth_depth_search(permuted)

    def test_cost_linear_in_edges(self):
        rng = random.Random(10)
        small = random_connected_graph(100, 50, rng)
        big = random_connected_graph(1000, 500, rng)
        t_small, t_big = CostTracker(), CostTracker()
        breadth_depth_search(small, tracker=t_small)
        breadth_depth_search(big, tracker=t_big)
        assert 5 <= t_big.work / t_small.work <= 20

    def test_visit_position_inverts_order(self):
        order = [2, 0, 1]
        assert visit_position(order) == [1, 2, 0]

    def test_bad_start_rejected(self):
        with pytest.raises(GraphError):
            breadth_depth_search(Graph(2), start=5)


class TestTraversals:
    def test_bfs_layers(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        graph.add_edge(1, 3)
        assert bfs_order(graph, 0) == [0, 1, 2, 3]

    def test_reachability(self):
        graph = Digraph(4)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        assert is_reachable(graph, 0, 2)
        assert not is_reachable(graph, 2, 0)
        assert is_reachable(graph, 3, 3)
        assert reachable_from(graph, 0) == {0, 1, 2}


class TestSCC:
    def test_cycle_is_one_component(self):
        graph = Digraph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 0)
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert components[0] == [0, 1, 2]

    def test_condensation_is_topological_dag(self):
        rng = random.Random(11)
        for _ in range(20):
            graph = gnm_digraph(30, 60, rng)
            dag, component_of = condensation(graph)
            assert is_dag(dag)
            # Component ids must be topologically ordered: edges go up.
            for u, v in dag.edges():
                assert u < v
            # Mutually reachable vertices share a component.
            for u, v in list(graph.edges())[:20]:
                if is_reachable(graph, v, u):
                    assert component_of[u] == component_of[v]

    def test_topological_order_respects_edges(self):
        rng = random.Random(12)
        dag = random_dag(40, 80, rng)
        order = topological_order(dag)
        position = {vertex: index for index, vertex in enumerate(order)}
        for u, v in dag.edges():
            assert position[u] < position[v]

    def test_topological_order_rejects_cycles(self):
        graph = Digraph(2)
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        with pytest.raises(GraphError):
            topological_order(graph)


class TestGenerators:
    def test_gnm_graph_counts(self):
        rng = random.Random(13)
        graph = gnm_graph(20, 30, rng)
        assert graph.n == 20
        assert graph.edge_count == 30

    def test_gnm_caps_at_max_edges(self):
        rng = random.Random(14)
        graph = gnm_graph(4, 100, rng)
        assert graph.edge_count == 6

    def test_random_tree_is_tree(self):
        rng = random.Random(15)
        tree = random_tree(50, rng)
        assert tree.edge_count == 49
        assert len(reachable_from(tree, 0)) == 50

    def test_random_dag_is_dag(self):
        rng = random.Random(16)
        assert is_dag(random_dag(30, 90, rng))

    def test_connected_graph_is_connected(self):
        rng = random.Random(17)
        graph = random_connected_graph(64, 32, rng)
        assert len(reachable_from(graph, 0)) == 64

    def test_social_digraph_has_cycles_to_compress(self):
        rng = random.Random(18)
        graph = social_digraph(100, rng)
        components = strongly_connected_components(graph)
        assert len(components) < graph.n  # at least one non-trivial SCC
