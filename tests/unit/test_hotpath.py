"""Unit tests for the serving hot path (ISSUE 5).

Covers the serve-plan fast path and its invalidation story (detach /
invalidate / cache eviction / apply_changes), the vectorized and chunked
batch paths, the sharded per-thread query counters, and the
``submit``-racing-``detach`` regression: a future executing after detach
must raise :class:`~repro.core.errors.UnknownDatasetError` cleanly, never a
``KeyError``/``AttributeError`` out of half-released session state.
"""

from __future__ import annotations

import threading

import pytest

from repro.catalog import build_query_engine
from repro.core.cost import CostTracker
from repro.core.errors import IndexError_, ServiceError, UnknownDatasetError
from repro.incremental.changes import ChangeKind, PointWrite, TupleChange
from repro.queries import (
    fischer_heun_scheme,
    membership_class,
    rmq_class,
    sorted_run_scheme,
)
from repro.service.engine import EngineStats, QueryEngine, QueryRequest

# The raw-payload QueryRequest form used throughout this module is
# deprecated (named sessions are the supported surface); its behavior
# is pinned here on purpose, so silence the migration warning.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _flat_engine(**kwargs) -> QueryEngine:
    engine = QueryEngine(**kwargs)
    engine.register("membership", membership_class(), sorted_run_scheme())
    engine.register("rmq", rmq_class(), fischer_heun_scheme())
    return engine


# -- submit racing detach (ISSUE 5 satellite) ----------------------------------


def test_submitted_futures_after_detach_raise_unknown_dataset_cleanly():
    """Queued futures that execute after detach() fail with the session
    error, never a KeyError/AttributeError from released internals."""
    for _ in range(10):
        engine = _flat_engine(max_workers=2)
        ds = engine.attach("events", tuple(range(256)), kinds=["membership"])
        ds.warm()
        futures = [ds.submit("membership", q) for q in range(64)]
        ds.detach()
        for future in futures:
            try:
                answer = future.result()
            except UnknownDatasetError:
                pass  # the clean post-detach outcome
            else:
                assert isinstance(answer, bool)  # ran before the detach won
        engine.close()


def test_submitted_futures_after_mutable_detach_raise_cleanly():
    for _ in range(5):
        engine = _flat_engine(max_workers=2)
        ds = engine.attach("events", tuple(range(128)), mutable=True)
        ds.query("membership", 5)
        futures = [ds.submit("membership", q) for q in range(32)]
        writer = threading.Thread(
            target=ds.apply_changes, args=([TupleChange(ChangeKind.INSERT, (999,))],)
        )
        writer.start()
        ds.detach()
        writer.join()
        for future in futures:
            try:
                answer = future.result()
            except (UnknownDatasetError, ServiceError):
                pass
            else:
                assert isinstance(answer, bool)
        engine.close()


def test_submit_racing_engine_close_raises_service_error():
    """A submit that loses the race against close() surfaces the engine's
    ServiceError, not the pool's raw 'cannot schedule new futures'."""
    engine = _flat_engine(max_workers=2)
    ds = engine.attach("events", tuple(range(64)), kinds=["membership"])
    ds.warm()
    errors = []

    def submitter():
        for query in range(500):
            try:
                ds.submit("membership", query)
            except (ServiceError, UnknownDatasetError) as exc:
                errors.append(exc)
                return

    thread = threading.Thread(target=submitter)
    thread.start()
    engine.close()
    thread.join()
    # Whatever point the race reached, no raw RuntimeError escaped.
    for error in errors:
        assert isinstance(error, (ServiceError, UnknownDatasetError))


# -- serve plans ----------------------------------------------------------------


def test_plan_is_cached_after_first_query_and_dropped_on_detach():
    with _flat_engine() as engine:
        ds = engine.attach("events", (5, 1, 4), kinds=["membership"])
        assert ds._plans == {}
        assert ds.query("membership", 5) is True
        assert "membership" in ds._plans
        ds.detach()
        assert ds._plans == {}
        with pytest.raises(UnknownDatasetError):
            ds.query("membership", 5)


def test_eviction_drops_exactly_the_watching_plans():
    """Keyed plan invalidation: evicting one structure drops the plans that
    captured it -- eagerly, so even sessions never queried again release
    their references -- while unrelated sessions keep their fast path."""
    engine = _flat_engine(cache_entries=1)
    ds = engine.attach("events", (5, 1, 4), kinds=["membership"])
    assert ds.query("membership", 5) is True
    assert "membership" in ds._plans
    ds2 = engine.attach("arrays", (3, 1, 2), kinds=["rmq"])
    assert ds2.query("rmq", (0, 2, 1)) is True  # evicts the membership build
    assert ds._plans == {}  # dropped eagerly, not just marked stale
    assert ds.query("membership", 1) is True  # rebuilt transparently
    assert "membership" in ds._plans
    engine.close()


def test_eviction_of_unrelated_keys_spares_other_sessions_plans():
    """A cache big enough for both structures: plans coexist and survive
    each other's resolutions (no global all-plans invalidation)."""
    with _flat_engine(cache_entries=8) as engine:
        ds = engine.attach("events", (5, 1, 4), kinds=["membership"])
        assert ds.query("membership", 5) is True
        plan = ds._plans["membership"]
        ds2 = engine.attach("arrays", (3, 1, 2), kinds=["rmq"])
        assert ds2.query("rmq", (0, 2, 1)) is True
        assert ds._plans["membership"] is plan  # untouched by the rmq build


def test_query_tracked_runs_the_analytic_evaluator_on_mutable_sessions():
    with _flat_engine() as engine:
        ds = engine.attach("events", tuple(range(256)), mutable=True)
        tracker = CostTracker()
        assert ds.query_tracked("membership", 17, tracker) is True
        assert tracker.work > 0  # the cost-charging evaluate ran, not the kernel


def test_serve_seconds_excludes_first_touch_build_time():
    """Lazy resolution inside the serve plans (cold shards, mutable first
    touch) must land in build counters, never in serve_seconds."""
    with _flat_engine() as engine:
        ds = engine.attach("events", tuple(range(4096)), kinds=["membership"], shards=4)
        assert ds.query("membership", 17) is True  # builds its routed shard
        stats = ds.stats()["kinds"]["membership"]
        assert stats["shard_build_seconds"] > 0
        assert stats["serve_seconds"] < stats["shard_build_seconds"]


def test_invalidate_spares_plans_of_attached_equal_content_sessions():
    with _flat_engine() as engine:
        payload = [5, 1, 4]
        ds = engine.attach("events", (5, 1, 4), kinds=["membership"])
        assert ds.query("membership", 5) is True
        # An anonymous payload with equal content shares the cached build;
        # invalidating it must not evict (the named session still serves).
        engine.execute(QueryRequest("membership", payload, 5))
        engine.invalidate(payload)
        assert "membership" in ds._plans  # the plan survived
        assert ds.query("membership", 1) is True


def test_mutable_plan_reflects_apply_changes_without_restitching():
    """The mutable serve plan reads the current structure per query, so a
    delta batch (in-place) and a fallback rebuild (structure swap) are both
    picked up immediately."""
    with _flat_engine() as engine:
        ds = engine.attach("events", (5, 1, 4), mutable=True)
        assert ds.query("membership", 9) is False
        ds.apply_changes([TupleChange(ChangeKind.INSERT, (9,))])
        assert ds.query("membership", 9) is True  # delta-maintained in place
        ds.apply_changes([PointWrite(0, -7)])  # membership refuses -> rebuild
        assert ds.query("membership", -7) is True
        assert ds.query("membership", 5) is False


# -- fast path == tracked path over exceptional queries -------------------------


def test_fast_path_error_parity_on_malformed_queries():
    with _flat_engine() as engine:
        ds = engine.attach("events", (3, 1, 2), kinds=["rmq"])
        with pytest.raises(IndexError_):
            ds.query_tracked("rmq", (2, 99, 0), CostTracker())
        with pytest.raises(IndexError_):
            ds.query("rmq", (2, 99, 0))


def test_query_tracked_charges_the_given_tracker():
    with _flat_engine() as engine:
        ds = engine.attach("events", tuple(range(512)), kinds=["membership"])
        tracker = CostTracker()
        assert ds.query_tracked("membership", 17, tracker) is True
        assert tracker.work > 0  # the analytic evaluator really ran
        before = tracker.work
        assert ds.query("membership", 17) is True  # untracked kernel
        assert tracker.work == before


# -- vectorized batches ----------------------------------------------------------


def test_query_batch_groups_by_kind_and_preserves_order():
    with _flat_engine() as engine:
        data = tuple(range(64))
        ds = engine.attach("events", data)
        pairs = []
        for i in range(50):  # interleave two kinds, exceed the inline cutoff
            pairs.append(("membership", i * 3))
            pairs.append(("rmq", (0, 63, 0)))
        answers = ds.query_batch(pairs)
        expected = [ds.query(kind, q) for kind, q in pairs]
        assert answers == expected
        assert ds.query_batch(pairs, concurrent=False) == expected
        assert ds.query_batch([]) == []


def test_mutable_query_batch_stays_batch_atomic_under_writes():
    """Grouped mutable batches still hold one latch: a concurrent writer can
    never tear a batch (all answers pre-batch or all post-batch)."""
    engine = _flat_engine(max_workers=4)
    ds = engine.attach("events", (1, 2, 3), mutable=True)
    ds.warm(["membership"])
    stop = threading.event = threading.Event()
    torn = []

    def reader():
        while not stop.is_set():
            # 999 and -999 are inserted by the same batch: a snapshot-
            # consistent batch answers both the same way.
            low, high = ds.query_batch([("membership", 999), ("membership", -999)])
            if low != high:
                torn.append((low, high))
                return

    threads = [threading.Thread(target=reader) for _ in range(3)]
    for thread in threads:
        thread.start()
    for _ in range(40):
        ds.apply_changes(
            [
                TupleChange(ChangeKind.INSERT, (999,)),
                TupleChange(ChangeKind.INSERT, (-999,)),
            ]
        )
        ds.apply_changes(
            [
                TupleChange(ChangeKind.DELETE, (999,)),
                TupleChange(ChangeKind.DELETE, (-999,)),
            ]
        )
    stop.set()
    for thread in threads:
        thread.join()
    assert torn == []
    engine.close()


def test_execute_batch_chunks_large_batches_and_matches_sequential():
    with _flat_engine(max_workers=3) as engine:
        data = tuple(range(96))
        requests = [QueryRequest("membership", data, q) for q in range(200)]
        concurrent = engine.execute_batch(requests)
        sequential = engine.execute_batch(requests, concurrent=False)
        assert concurrent == sequential
        assert engine.stats().per_kind["membership"].queries == 400


# -- sharded query counters -------------------------------------------------------


def test_stats_fold_across_threads_and_reset():
    with _flat_engine(max_workers=4) as engine:
        data = tuple(range(128))
        ds = engine.attach("events", data, kinds=["membership"])
        ds.warm()

        def worker():
            for q in range(25):
                ds.query("membership", q)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = ds.stats()["kinds"]["membership"]
        assert stats["queries"] == 100
        assert stats["serve_seconds"] > 0
        engine.reset_stats()
        after = ds.stats()["kinds"]["membership"]
        assert after["queries"] == 0 and after["serve_seconds"] == 0.0
        ds.query("membership", 1)
        assert ds.stats()["kinds"]["membership"]["queries"] == 1


# -- eviction-listener hardening (ISSUE 7 satellite) ---------------------------


def test_raising_eviction_listener_cannot_poison_cache_or_skip_keys():
    """A listener that raises is contained: the cache lock stays healthy,
    every evicted key is still notified (clear() reaches all of them), and
    the failures are counted instead of propagated."""
    from repro.service.cache import LRUArtifactCache

    notified = []

    def bad_listener(key):
        notified.append(key)
        raise RuntimeError(f"listener crashed on {key!r}")

    cache = LRUArtifactCache(capacity=2)
    cache.set_eviction_listener(bad_listener)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("c", 3)  # evicts "a"; the listener raises -- contained
    assert notified == ["a"]
    assert cache.get("c") == 3  # the lock survived: cache still usable
    assert cache.invalidate("b") is True  # raises again -- still contained
    cache.put("d", 4)
    cache.clear()  # both remaining keys notified despite every call raising
    assert sorted(notified) == ["a", "b", "c", "d"]
    assert cache.stats().listener_errors == 4
    cache.put("e", 5)  # and the cache keeps working after all of it
    assert cache.get("e") == 5


def test_listener_errors_surface_in_engine_health_rollup():
    with _flat_engine(cache_entries=1) as engine:
        engine._cache.set_eviction_listener(
            lambda key: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        data = tuple(range(32))
        engine.attach("a", data, kinds=["membership"]).query("membership", 1)
        engine.attach("b", tuple(range(16)), kinds=["rmq"]).query("rmq", (0, 3, 0))
        health = engine.stats().stats_snapshot()["health"]
        assert health["cache_listener_errors"] >= 1


# -- stats shape under concurrency (ISSUE 7 satellite) -------------------------


def test_stats_snapshot_shape_stays_stable_under_concurrent_readers_and_writer():
    """``Dataset.stats()`` / ``stats_snapshot()`` keep their documented dict
    shape while reader threads hammer them against one mutating writer --
    no KeyError/RuntimeError out of half-updated counter state."""
    health_keys = set(EngineStats.HEALTH_FIELDS) | {"cache_listener_errors"}
    with _flat_engine(max_workers=2) as engine:
        ds = engine.attach("events", (1, 2, 3), kinds=["membership"], mutable=True)
        ds.query("membership", 1)
        failures = []
        stop = threading.Event()

        def reader():
            try:
                while not stop.is_set():
                    session = ds.stats()
                    assert session["dataset"] == "events"
                    assert session["mutable"] is True
                    assert isinstance(session["version"], int)
                    counters = session["kinds"]["membership"]
                    assert set(counters) >= {"queries", "hit_rate", "delta_batches"}
                    snapshot = engine.stats().stats_snapshot()
                    assert set(snapshot["health"]) == health_keys
                    assert all(
                        isinstance(value, int) and value >= 0
                        for value in snapshot["health"].values()
                    )
                    assert "membership" in snapshot["per_kind"]
            except BaseException as exc:  # surfaced after join
                failures.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        for value in range(200):
            ds.apply_changes([TupleChange(ChangeKind.INSERT, (value,))])
            ds.query("membership", value)
        stop.set()
        for thread in readers:
            thread.join()
        assert not failures, failures
        assert ds.stats()["kinds"]["membership"]["delta_batches"] == 200
