"""Unit tests for scaling-law classification (repro.core.fitting)."""

import math

import pytest

from repro.core.errors import CertificationError
from repro.core.fitting import (
    ScalingKind,
    classify_scaling,
    fit_polylog,
    fit_power,
)

SIZES = [2**k for k in range(10, 21)]


class TestFits:
    def test_power_fit_recovers_exponent(self):
        for exponent in (0.5, 1.0, 2.0):
            fit = fit_power(SIZES, [3.0 * n**exponent for n in SIZES])
            assert fit.exponent == pytest.approx(exponent, abs=0.01)
            assert fit.r2 > 0.999

    def test_polylog_fit_recovers_exponent(self):
        for k in (1, 2, 3):
            fit = fit_polylog(SIZES, [2.0 * math.log2(n) ** k for n in SIZES])
            assert fit.exponent == pytest.approx(k, abs=0.05)
            assert fit.r2 > 0.999

    def test_predict(self):
        fit = fit_power(SIZES, [n for n in SIZES])
        assert fit.predict(1000) == pytest.approx(1000, rel=0.05)


class TestClassification:
    def test_constant_curve(self):
        verdict = classify_scaling(SIZES, [7.0] * len(SIZES))
        assert verdict.kind is ScalingKind.CONSTANT
        assert verdict.is_feasible_online

    def test_logarithmic_curve_is_polylog(self):
        verdict = classify_scaling(SIZES, [math.log2(n) for n in SIZES])
        assert verdict.kind is not ScalingKind.POLYNOMIAL

    def test_cubed_log_curve_is_polylog(self):
        verdict = classify_scaling(SIZES, [math.log2(n) ** 3 for n in SIZES])
        assert verdict.kind is ScalingKind.POLYLOG
        assert verdict.is_feasible_online

    def test_linear_curve_is_polynomial(self):
        verdict = classify_scaling(SIZES, [2.0 * n for n in SIZES])
        assert verdict.kind is ScalingKind.POLYNOMIAL
        assert not verdict.is_feasible_online

    def test_sqrt_curve_is_polynomial(self):
        verdict = classify_scaling(SIZES, [n**0.5 for n in SIZES])
        assert verdict.kind is ScalingKind.POLYNOMIAL

    def test_nlogn_curve_is_polynomial(self):
        verdict = classify_scaling(SIZES, [n * math.log2(n) for n in SIZES])
        assert verdict.kind is ScalingKind.POLYNOMIAL

    def test_describe_mentions_kind(self):
        verdict = classify_scaling(SIZES, [5.0] * len(SIZES))
        assert "O(1)" in verdict.describe()


class TestValidation:
    def test_too_few_sizes_rejected(self):
        with pytest.raises(CertificationError):
            classify_scaling([16, 32], [1.0, 2.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(CertificationError):
            classify_scaling([16, 32, 64], [1.0, 2.0])

    def test_non_increasing_sizes_rejected(self):
        with pytest.raises(CertificationError):
            classify_scaling([64, 32, 16], [1.0, 2.0, 3.0])

    def test_tiny_sizes_rejected(self):
        with pytest.raises(CertificationError):
            classify_scaling([1, 2, 3], [1.0, 2.0, 3.0])

    def test_zero_values_are_clamped_not_fatal(self):
        verdict = classify_scaling([16, 32, 64, 128], [0, 0, 0, 0])
        assert verdict.kind is ScalingKind.CONSTANT
