"""Unit tests for the fault-injection plumbing (ISSUE 7 tentpole).

Tier-1 coverage of :mod:`repro.service.faults` itself -- spec validation,
deterministic clocks, the scenario registry, arming semantics, and the
:class:`DegradedAnswer` marker.  The *serving-stack* recovery behavior each
scenario triggers lives in ``tests/chaos/`` (run with ``-m chaos``); these
tests keep the subsystem's contracts pinned in the default suite.
"""

from __future__ import annotations

import pytest

from repro.service import faults
from repro.service.faults import (
    SCENARIOS,
    SITES,
    DegradedAnswer,
    FaultClock,
    FaultPlan,
    FaultSpec,
    RecoveryPolicy,
    scenario,
)


@pytest.fixture(autouse=True)
def _always_disarm():
    yield
    faults.clear_fault_plan()


# -- FaultSpec validation ------------------------------------------------------


def test_spec_rejects_unknown_site_and_mismatched_mode():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultSpec("store.missing", "corrupt")
    with pytest.raises(ValueError, match="not valid at site"):
        FaultSpec("store.read", "disk-full")
    with pytest.raises(ValueError, match="probability"):
        FaultSpec("store.read", "corrupt", probability=1.5)


def test_spec_matching_filters_kind_and_shard():
    spec = FaultSpec("shard.partial", "raise", kind="membership", shard=2)
    assert spec.matches("membership", 2)
    assert not spec.matches("rmq", 2)
    assert not spec.matches("membership", 0)
    # None on either side means "no filter applies".
    assert spec.matches(None, None)
    assert FaultSpec("shard.partial", "raise").matches("anything", 7)


def test_every_site_mode_pair_constructs():
    for site, modes in SITES.items():
        for mode in modes:
            assert FaultSpec(site, mode).site == site


# -- FaultClock determinism ----------------------------------------------------


def test_clock_respects_after_times_and_probability_deterministically():
    spec = FaultSpec("store.read", "corrupt", after=2, times=3)
    clock = FaultClock(seed=7)
    decisions = [clock.decide(0, spec) for _ in range(10)]
    # Skips the first `after` invocations, then fires exactly `times`.
    assert decisions == [False, False, True, True, True] + [False] * 5

    thinned = FaultSpec("store.read", "corrupt", times=None, probability=0.4)

    def schedule(seed):
        clock = FaultClock(seed=seed)
        return [clock.decide(0, thinned) for _ in range(50)]

    schedule_a, schedule_b, schedule_c = schedule(11), schedule(11), schedule(12)
    assert schedule_a == schedule_b  # same seed, same schedule
    assert schedule_a != schedule_c  # a different seed reshuffles
    assert 0 < sum(schedule_a) < 50  # thinning actually thins


def test_clock_counts_specs_independently():
    clock = FaultClock()
    eager = FaultSpec("store.read", "corrupt", times=1)
    assert clock.decide(0, eager) is True
    assert clock.decide(0, eager) is False  # spent
    assert clock.decide(1, eager) is True  # a different spec index is fresh
    assert clock.fired(0) == 1 and clock.fired(1) == 1


# -- plans, arming, and the registry -------------------------------------------


def test_install_is_exclusive_and_clear_is_idempotent():
    plan = scenario("corrupt-artifact")
    faults.install_fault_plan(plan)
    assert faults.active_plan() is plan
    with pytest.raises(RuntimeError, match="already armed"):
        faults.install_fault_plan(scenario("dead-shard"))
    faults.clear_fault_plan()
    faults.clear_fault_plan()  # idempotent
    assert faults.active_plan() is None


def test_armed_context_clears_even_on_error():
    plan = scenario("eviction-storm")
    with pytest.raises(RuntimeError, match="boom"):
        with plan.armed():
            assert faults.active_plan() is plan
            raise RuntimeError("boom")
    assert faults.active_plan() is None


def test_policy_follows_the_armed_plan():
    assert faults.policy() is faults.DEFAULT_POLICY
    custom = RecoveryPolicy(load_retries=3)
    with scenario("corrupt-artifact", policy=custom).armed():
        assert faults.policy() is custom
    assert faults.policy() is faults.DEFAULT_POLICY


def test_scenario_overrides_replace_spec_fields():
    plan = scenario("dead-shard", kind="membership", times=None, seed=5)
    assert plan.name == "dead-shard"
    assert plan.seed == 5
    assert all(spec.kind == "membership" for spec in plan.specs)
    assert all(spec.times is None for spec in plan.specs)
    with pytest.raises(KeyError, match="unknown fault scenario"):
        scenario("meteor-strike")
    # Overrides are validated like hand-built specs.
    with pytest.raises(ValueError, match="probability"):
        scenario("dead-shard", probability=2.0)


def test_registry_specs_all_target_known_sites():
    for name, specs in SCENARIOS.items():
        assert specs, name
        for spec in specs:
            assert spec.site in SITES
            assert spec.mode in SITES[spec.site]


def test_first_firing_and_fired_count_filter_by_site():
    plan = FaultPlan(
        [
            FaultSpec("store.read", "corrupt", times=1),
            FaultSpec("cache.put", "evict-storm", times=2),
        ]
    )
    assert plan.first_firing("store.read").mode == "corrupt"
    assert plan.first_firing("store.read") is None  # spent
    assert plan.first_firing("cache.put").mode == "evict-storm"
    assert plan.fired_count("store.read") == 1
    assert plan.fired_count() == 2
    assert plan.first_firing("mutable.delta") is None


def test_disarmed_hooks_are_no_ops():
    """The zero-overhead contract: with no plan armed every hook returns
    without side effects, so serving code can guard on ``_PLAN is None``."""
    assert faults.active_plan() is None
    assert faults.on_store_read(None, b"payload") == b"payload"
    faults.on_store_write(None)
    faults.on_shard_partial("membership", 0)
    faults.on_cache_put(None, None)
    faults.on_delta_apply("membership")


# -- DegradedAnswer ------------------------------------------------------------


def test_degraded_answer_compares_like_bool_but_is_marked():
    hit = DegradedAnswer(True, reason="shard 1 lost", failed_shards=(1,))
    miss = DegradedAnswer(False, reason="shard 2 lost", failed_shards=(2,))
    assert hit == True and miss == False  # noqa: E712 - the compat contract
    assert bool(hit) is True and bool(miss) is False
    assert hit.partial and miss.partial
    assert hit.failed_shards == (1,)
    assert "shard 1 lost" in repr(hit)
    # A plain bool carries no marker -- the attribute is the discriminator.
    assert not getattr(True, "partial", False)
