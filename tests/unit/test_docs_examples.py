"""Doctests over the documentation, so examples cannot rot (ISSUE 2).

Every ``>>>`` example in ``docs/*.md`` and ``README.md`` is executed here
(and again by the CI docs job).  Markdown prose is ignored by doctest;
only interactive examples are checked.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted(REPO_ROOT.glob("docs/*.md")) + [REPO_ROOT / "README.md"]


def test_documentation_files_exist():
    names = {path.name for path in DOC_FILES}
    assert {"architecture.md", "paper_map.md", "README.md"} <= names


@pytest.mark.parametrize("path", DOC_FILES, ids=lambda p: p.name)
def test_doc_examples_run(path):
    results = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
    )
    assert results.failed == 0, f"{path.name}: {results.failed} doctest failure(s)"


def test_architecture_walkthrough_is_actually_tested():
    """architecture.md must keep at least one executable example."""
    text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    assert ">>>" in text
