"""Unit tests for the PRAM simulator (repro.parallel)."""

import math

import numpy as np
import pytest

from repro.core.cost import CostTracker
from repro.parallel import (
    ParallelMachine,
    parallel_any,
    parallel_binary_search,
    parallel_max,
    parallel_sort,
    parallel_sum,
    reachability_query_squaring,
    transitive_closure_squaring,
)


@pytest.fixture
def machine():
    return ParallelMachine(CostTracker())


class TestPmap:
    def test_values(self, machine):
        assert machine.pmap(lambda x, t: x * x, [1, 2, 3]) == [1, 4, 9]

    def test_depth_is_max_not_sum(self):
        tracker = CostTracker()
        machine = ParallelMachine(tracker)

        def cost_i(x, t):
            t.tick(x)
            return x

        machine.pmap(cost_i, [1, 5, 10])
        # depth: max branch (10 + 1 activation) + 1 overhead
        assert tracker.depth == 12
        assert tracker.work >= 16


class TestReduce:
    def test_empty_returns_identity(self, machine):
        assert machine.preduce(lambda a, b, t: a + b, [], identity=0) == 0

    def test_sum(self, machine):
        assert parallel_sum(list(range(100)), machine) == sum(range(100))

    def test_max(self, machine):
        assert parallel_max([3, 1, 7, 2], machine) == 7
        assert parallel_max([], machine) is None

    def test_any(self, machine):
        assert parallel_any([False, False, True], machine)
        assert not parallel_any([False] * 10, machine)
        assert not parallel_any([], machine)

    def test_reduce_depth_is_logarithmic(self):
        small, big = CostTracker(), CostTracker()
        parallel_sum([1.0] * 64, ParallelMachine(small))
        parallel_sum([1.0] * 4096, ParallelMachine(big))
        # 64x more work but only ~2x more depth.
        assert big.work > 30 * small.work
        assert big.depth < 3 * small.depth


class TestScan:
    def test_prefix_sums(self, machine):
        values = [1, 2, 3, 4, 5]
        assert machine.pscan(lambda a, b: a + b, values) == [1, 3, 6, 10, 15]

    def test_scan_depth_logarithmic(self):
        tracker = CostTracker()
        ParallelMachine(tracker).pscan(lambda a, b: a + b, list(range(1024)))
        assert tracker.depth <= math.ceil(math.log2(1024)) + 1


class TestListRank:
    def test_chain_ranks(self, machine):
        # 0 -> 1 -> 2 -> 3 -> None
        successor = [1, 2, 3, None]
        assert machine.list_rank(successor) == [3, 2, 1, 0]

    def test_depth_logarithmic(self):
        tracker = CostTracker()
        n = 512
        successor = [i + 1 for i in range(n - 1)] + [None]
        ParallelMachine(tracker).list_rank(successor)
        assert tracker.depth <= math.ceil(math.log2(n)) + 1


class TestBinarySearch:
    def test_positions(self):
        run = [10, 20, 20, 30]
        assert parallel_binary_search(run, 5) == 0
        assert parallel_binary_search(run, 20) == 1
        assert parallel_binary_search(run, 25) == 3
        assert parallel_binary_search(run, 99) == 4

    def test_cost_logarithmic(self):
        tracker = CostTracker()
        parallel_binary_search(list(range(4096)), 1234, tracker)
        assert tracker.depth <= 13


class TestSort:
    def test_sorts(self, machine):
        assert parallel_sort([3, 1, 2], machine) == [1, 2, 3]

    def test_charges_polylog_depth(self):
        tracker = CostTracker()
        parallel_sort(list(range(1024, 0, -1)), ParallelMachine(tracker))
        assert tracker.depth == math.ceil(math.log2(1024)) ** 2


class TestMatrixSquaring:
    def test_closure_matches_bfs(self):
        rng = np.random.default_rng(5)
        n = 30
        adjacency = rng.random((n, n)) < 0.08
        np.fill_diagonal(adjacency, False)
        machine = ParallelMachine(CostTracker())
        closure = transitive_closure_squaring(adjacency, machine)

        # Reference closure by repeated relaxation.
        reference = adjacency | np.eye(n, dtype=bool)
        for _ in range(n):
            reference = reference | (reference @ reference > 0)
        assert (closure == reference).all()

    def test_query(self):
        adjacency = np.zeros((4, 4), dtype=bool)
        adjacency[0, 1] = adjacency[1, 2] = True
        machine = ParallelMachine(CostTracker())
        assert reachability_query_squaring(adjacency, 0, 2, machine)
        assert not reachability_query_squaring(adjacency, 2, 0, machine)

    def test_depth_polylog_work_cubic(self):
        n = 64
        adjacency = np.zeros((n, n), dtype=bool)
        tracker = CostTracker()
        transitive_closure_squaring(adjacency, ParallelMachine(tracker))
        log_n = math.ceil(math.log2(n))
        assert tracker.depth == log_n * (log_n + 1)
        assert tracker.work == log_n * n**3

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            transitive_closure_squaring(
                np.zeros((2, 3), dtype=bool), ParallelMachine(CostTracker())
            )
