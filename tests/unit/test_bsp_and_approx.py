"""Unit tests for the BSP cost model and approximate VC oracle (S8 extensions)."""

import random

import numpy as np
import pytest

from repro.core import CostTracker
from repro.graphs import Graph, gnm_graph
from repro.kernelization import (
    ApproximateVertexCoverOracle,
    VCInstance,
    maximal_matching,
    vc_brute_force,
)
from repro.parallel import (
    BSPMachine,
    bsp_reachability_frontier,
    bsp_reachability_squaring,
)


def random_adjacency(rng, n, density=0.08):
    matrix = np.zeros((n, n), dtype=bool)
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < density:
                matrix[u, v] = True
    return matrix


class TestBSPMachine:
    def test_cost_formula(self):
        machine = BSPMachine(g=3, latency=10)
        machine.superstep([5, 7, 2], [1, 4, 0])
        machine.superstep([1], [1])
        assert machine.rounds == 2
        # (7 + 3*4 + 10) + (1 + 3*1 + 10)
        assert machine.total_cost == 29 + 14
        assert "rounds=2" in machine.summary()

    def test_empty_superstep(self):
        machine = BSPMachine()
        machine.superstep([], [])
        assert machine.total_cost == machine.latency


class TestBSPReachability:
    def test_both_routes_agree_with_each_other(self):
        rng = random.Random(600)
        for _ in range(15):
            n = rng.randint(2, 40)
            adjacency = random_adjacency(rng, n)
            u, v = rng.randrange(n), rng.randrange(n)
            frontier = bsp_reachability_frontier(adjacency, u, v, BSPMachine())
            squaring = bsp_reachability_squaring(adjacency, u, v, BSPMachine())
            assert frontier == squaring

    def test_round_counts(self):
        # A path graph: frontier BFS needs ~n rounds, squaring ~log n.
        n = 64
        adjacency = np.zeros((n, n), dtype=bool)
        for i in range(n - 1):
            adjacency[i, i + 1] = True
        frontier_machine = BSPMachine()
        squaring_machine = BSPMachine()
        assert bsp_reachability_frontier(adjacency, 0, n - 1, frontier_machine)
        assert bsp_reachability_squaring(adjacency, 0, n - 1, squaring_machine)
        assert frontier_machine.rounds >= n - 1
        assert squaring_machine.rounds == 6  # ceil(log2 64)

    def test_coordination_vs_work_tradeoff(self):
        # Squaring: few rounds, massive per-round work; frontier: the dual.
        # A path graph makes the trade deterministic.
        n = 64
        adjacency = np.zeros((n, n), dtype=bool)
        for i in range(n - 1):
            adjacency[i, i + 1] = True
        frontier_machine = BSPMachine(latency=1000)
        squaring_machine = BSPMachine(latency=1000)
        bsp_reachability_frontier(adjacency, 0, n - 1, frontier_machine)
        bsp_reachability_squaring(adjacency, 0, n - 1, squaring_machine)
        assert squaring_machine.rounds < frontier_machine.rounds // 8
        max_frontier_work = max(s.max_local_work for s in frontier_machine.supersteps)
        max_squaring_work = max(s.max_local_work for s in squaring_machine.supersteps)
        assert max_squaring_work > 100 * max_frontier_work


class TestApproximateVC:
    def test_matching_is_maximal_and_disjoint(self):
        rng = random.Random(602)
        for _ in range(20):
            graph = gnm_graph(rng.randint(2, 30), rng.randint(0, 60), rng)
            matching = maximal_matching(graph)
            used = [v for edge in matching for v in edge]
            assert len(used) == len(set(used))  # vertex-disjoint
            matched = set(used)
            for u, v in graph.edges():  # maximality: no edge fully unmatched
                assert u in matched or v in matched

    def test_cover_is_a_cover(self):
        rng = random.Random(603)
        for _ in range(20):
            graph = gnm_graph(rng.randint(2, 30), rng.randint(0, 60), rng)
            oracle = ApproximateVertexCoverOracle(graph)
            cover = set(oracle.cover)
            for u, v in graph.edges():
                assert u in cover or v in cover

    def test_one_sided_guarantee(self):
        # approx False -> exact False; exact True -> approx True.
        rng = random.Random(604)
        for _ in range(80):
            n = rng.randint(2, 10)
            graph = gnm_graph(n, rng.randint(0, 2 * n), rng)
            oracle = ApproximateVertexCoverOracle(graph)
            for k in range(0, 6):
                exact = vc_brute_force(VCInstance(graph, k))
                approx = oracle.probably_coverable(k)
                if not approx:
                    assert not exact
                if exact:
                    assert approx

    def test_bounds_sandwich_optimum(self):
        rng = random.Random(605)
        for _ in range(40):
            n = rng.randint(2, 9)
            graph = gnm_graph(n, rng.randint(0, 2 * n), rng)
            oracle = ApproximateVertexCoverOracle(graph)
            optimum = next(
                k for k in range(n + 1) if vc_brute_force(VCInstance(graph, k))
            )
            assert oracle.lower_bound <= optimum <= oracle.upper_bound
            assert oracle.upper_bound <= 2 * max(oracle.lower_bound, 1) or (
                oracle.upper_bound == 0
            )

    def test_certified_cover_within(self):
        graph = Graph(4)
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        oracle = ApproximateVertexCoverOracle(graph)
        assert oracle.certified_cover_within(2) == oracle.cover
        assert oracle.certified_cover_within(1) is None

    def test_query_cost_constant(self):
        rng = random.Random(606)
        oracle = ApproximateVertexCoverOracle(gnm_graph(2000, 5000, rng))
        tracker = CostTracker()
        oracle.probably_coverable(10, tracker)
        assert tracker.depth == 1
