"""Unit tests for the Boolean circuit substrate (repro.circuits)."""

import random

import pytest

from repro.circuits import (
    Circuit,
    Gate,
    GateOp,
    deep_chain_circuit,
    dual_rail_inputs,
    evaluate,
    evaluate_all,
    evaluate_layered,
    layered_circuit,
    random_circuit,
    random_inputs,
    random_monotone_circuit,
    to_monotone_dual_rail,
)
from repro.core.cost import CostTracker
from repro.core.errors import CircuitError
from repro.parallel import ParallelMachine


def xor_circuit() -> Circuit:
    """(x0 AND NOT x1) OR (NOT x0 AND x1), built by hand."""
    gates = [
        Gate(GateOp.INPUT, payload=0),  # 0
        Gate(GateOp.INPUT, payload=1),  # 1
        Gate(GateOp.NOT, args=(0,)),  # 2
        Gate(GateOp.NOT, args=(1,)),  # 3
        Gate(GateOp.AND, args=(0, 3)),  # 4
        Gate(GateOp.AND, args=(2, 1)),  # 5
        Gate(GateOp.OR, args=(4, 5)),  # 6
    ]
    return Circuit(2, gates)


class TestValidation:
    def test_forward_reference_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(1, [Gate(GateOp.NOT, args=(0,))])

    def test_arity_checked(self):
        with pytest.raises(CircuitError):
            Circuit(1, [Gate(GateOp.INPUT, payload=0), Gate(GateOp.AND, args=(0,))])

    def test_input_payload_range_checked(self):
        with pytest.raises(CircuitError):
            Circuit(1, [Gate(GateOp.INPUT, payload=3)])

    def test_const_payload_checked(self):
        with pytest.raises(CircuitError):
            Circuit(0, [Gate(GateOp.CONST, payload=7)])

    def test_output_range_checked(self):
        with pytest.raises(CircuitError):
            Circuit(1, [Gate(GateOp.INPUT, payload=0)], output=5)

    def test_empty_circuit_rejected(self):
        with pytest.raises(CircuitError):
            Circuit(0, [])


class TestEvaluation:
    def test_xor_truth_table(self):
        circuit = xor_circuit()
        for a in (False, True):
            for b in (False, True):
                assert evaluate(circuit, [a, b]) == (a != b)

    def test_all_gate_ops(self):
        cases = {
            GateOp.AND: [(False, False, False), (True, False, False), (True, True, True)],
            GateOp.OR: [(False, False, False), (True, False, True), (True, True, True)],
            GateOp.NAND: [(True, True, False), (False, True, True)],
            GateOp.NOR: [(False, False, True), (True, False, False)],
        }
        for op, rows in cases.items():
            for a, b, expected in rows:
                circuit = Circuit(
                    2,
                    [
                        Gate(GateOp.INPUT, payload=0),
                        Gate(GateOp.INPUT, payload=1),
                        Gate(op, args=(0, 1)),
                    ],
                )
                assert evaluate(circuit, [a, b]) == expected, op

    def test_const_gates(self):
        circuit = Circuit(0, [Gate(GateOp.CONST, payload=1)])
        assert evaluate(circuit, [])

    def test_wrong_input_arity_raises(self):
        with pytest.raises(CircuitError):
            evaluate(xor_circuit(), [True])

    def test_evaluate_all_returns_every_gate(self):
        values = evaluate_all(xor_circuit(), [True, False])
        assert values[0] is True and values[1] is False
        assert values[6] is True

    def test_cost_linear_in_size(self):
        rng = random.Random(40)
        tracker = CostTracker()
        circuit = random_circuit(4, 200, rng)
        evaluate(circuit, random_inputs(4, rng), tracker)
        assert 200 <= tracker.work <= 3 * (200 + 4) + 10


class TestLayeredEvaluation:
    def test_agrees_with_sequential(self):
        rng = random.Random(41)
        for _ in range(40):
            circuit = random_circuit(3, rng.randint(1, 50), rng)
            inputs = random_inputs(3, rng)
            machine = ParallelMachine(CostTracker())
            assert evaluate_layered(circuit, inputs, machine) == evaluate(
                circuit, inputs
            )

    def test_depth_tracks_circuit_depth(self):
        rng = random.Random(42)
        deep = deep_chain_circuit(300, rng)
        shallow = layered_circuit(8, 32, 5, rng)
        t_deep, t_shallow = CostTracker(), CostTracker()
        evaluate_layered(deep, random_inputs(deep.n_inputs, rng), ParallelMachine(t_deep))
        evaluate_layered(
            shallow, random_inputs(shallow.n_inputs, rng), ParallelMachine(t_shallow)
        )
        assert deep.depth() == 300
        assert shallow.depth() == 5
        assert t_deep.depth > 10 * t_shallow.depth


class TestStructure:
    def test_layers_partition_gates(self):
        circuit = xor_circuit()
        layers = circuit.layers()
        assert sorted(g for layer in layers for g in layer) == list(range(7))
        assert layers[0] == [0, 1]
        assert circuit.depth() == 3

    def test_encode_decode_roundtrip(self):
        rng = random.Random(43)
        for _ in range(20):
            circuit = random_circuit(3, rng.randint(1, 30), rng)
            assert Circuit.decode(circuit.encode()) == circuit

    def test_monotone_flag(self):
        rng = random.Random(44)
        assert random_monotone_circuit(3, 20, rng).is_monotone
        assert not xor_circuit().is_monotone


class TestDualRail:
    def test_equivalence_on_random_circuits(self):
        rng = random.Random(45)
        for _ in range(120):
            circuit = random_circuit(rng.randint(1, 5), rng.randint(1, 25), rng)
            inputs = random_inputs(circuit.n_inputs, rng)
            monotone = to_monotone_dual_rail(circuit)
            assert monotone.is_monotone
            assert evaluate(monotone, dual_rail_inputs(inputs)) == evaluate(
                circuit, inputs
            )

    def test_size_at_most_doubles(self):
        rng = random.Random(46)
        circuit = random_circuit(4, 60, rng)
        monotone = to_monotone_dual_rail(circuit)
        assert len(monotone.gates) <= 2 * len(circuit.gates)

    def test_dual_rail_inputs(self):
        assert dual_rail_inputs([True, False]) == [True, False, False, True]


class TestGenerators:
    def test_deep_chain_depth(self):
        rng = random.Random(47)
        assert deep_chain_circuit(123, rng).depth() == 123

    def test_layered_depth(self):
        rng = random.Random(48)
        assert layered_circuit(4, 8, 7, rng).depth() == 7

    def test_bad_parameters_rejected(self):
        rng = random.Random(49)
        with pytest.raises(ValueError):
            random_circuit(0, 5, rng)
        with pytest.raises(ValueError):
            deep_chain_circuit(0, rng)
        with pytest.raises(ValueError):
            layered_circuit(1, 0, 1, rng)
