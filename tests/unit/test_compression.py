"""Unit tests for query-preserving and lossless compression (Section 4(5))."""

import random

import pytest

from repro.compression import LosslessCompressedGraph, ReachabilityPreservingCompression
from repro.core.cost import CostTracker
from repro.graphs import Digraph, gnm_digraph, is_reachable, social_digraph


class TestReachabilityPreserving:
    def test_scc_contraction(self):
        # A 3-cycle plus a tail compresses to at most 2 classes.
        graph = Digraph(4)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 0)
        graph.add_edge(2, 3)
        compressed = ReachabilityPreservingCompression(graph)
        assert compressed.compressed_vertices <= 2
        assert compressed.reachable(0, 3)
        assert not compressed.reachable(3, 0)
        assert compressed.reachable(1, 0)  # same SCC

    def test_equivalence_merge(self):
        # Two parallel middle vertices with identical neighbourhoods merge.
        graph = Digraph(4)
        graph.add_edge(0, 1)
        graph.add_edge(0, 2)
        graph.add_edge(1, 3)
        graph.add_edge(2, 3)
        compressed = ReachabilityPreservingCompression(graph)
        assert compressed.class_of(1) == compressed.class_of(2)
        assert compressed.compressed_vertices == 3
        # Queries between merged-but-distinct vertices answer False.
        assert not compressed.reachable(1, 2)
        assert not compressed.reachable(2, 1)
        assert compressed.reachable(1, 1)

    def test_preserves_all_answers_on_random_graphs(self):
        rng = random.Random(50)
        for _ in range(6):
            graph = social_digraph(80, rng)
            compressed = ReachabilityPreservingCompression(graph)
            for u in range(0, 80, 7):
                for v in range(0, 80, 11):
                    assert compressed.reachable(u, v) == is_reachable(graph, u, v)

    def test_preserves_answers_on_sparse_dags(self):
        rng = random.Random(51)
        graph = gnm_digraph(60, 90, rng, allow_cycles=False)
        compressed = ReachabilityPreservingCompression(graph)
        for _ in range(400):
            u, v = rng.randrange(60), rng.randrange(60)
            assert compressed.reachable(u, v) == is_reachable(graph, u, v)

    def test_ratio_reported(self):
        rng = random.Random(52)
        graph = social_digraph(100, rng)
        compressed = ReachabilityPreservingCompression(graph)
        assert compressed.compression_ratio() >= 1.0
        assert compressed.compressed_vertices <= graph.n

    def test_query_cost_constant(self):
        rng = random.Random(53)
        compressed = ReachabilityPreservingCompression(social_digraph(300, rng))
        tracker = CostTracker()
        compressed.reachable(5, 250, tracker)
        assert tracker.depth <= 4


class TestLossless:
    def test_roundtrip(self):
        rng = random.Random(54)
        graph = gnm_digraph(40, 80, rng)
        blob = LosslessCompressedGraph(graph)
        assert blob.decompress() == graph

    def test_compresses(self):
        rng = random.Random(55)
        graph = gnm_digraph(200, 600, rng)
        blob = LosslessCompressedGraph(graph)
        assert blob.compression_ratio() > 1.5

    def test_queries_correct_but_linear(self):
        rng = random.Random(56)
        graph = gnm_digraph(50, 120, rng)
        blob = LosslessCompressedGraph(graph)
        tracker = CostTracker()
        for _ in range(20):
            u, v = rng.randrange(50), rng.randrange(50)
            assert blob.reachable(u, v, tracker) == is_reachable(graph, u, v)
        # Every query pays at least the decompression: linear in |D|.
        assert tracker.work >= 20 * blob.original_bytes
