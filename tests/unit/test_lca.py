"""Unit tests for tree and DAG LCA indexes."""

import random

import pytest

from repro.core.cost import CostTracker
from repro.core.errors import GraphError
from repro.graphs import Digraph, Graph, random_dag, random_tree
from repro.indexes import (
    DagLCAIndex,
    EulerTourLCA,
    naive_dag_lca,
    naive_tree_lca,
    tree_parents,
)


class TestTreeParents:
    def test_simple_chain(self):
        tree = Graph(3)
        tree.add_edge(0, 1)
        tree.add_edge(1, 2)
        assert tree_parents(tree, 0) == [-1, 0, 1]

    def test_rejects_disconnected(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        with pytest.raises(GraphError):
            tree_parents(graph, 0)

    def test_rejects_cycles(self):
        graph = Graph(3)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 0)
        with pytest.raises(GraphError):
            tree_parents(graph, 0)


class TestEulerTourLCA:
    def test_chain(self):
        tree = Graph(4)
        for v in range(3):
            tree.add_edge(v, v + 1)
        lca = EulerTourLCA(tree, 0)
        assert lca.lca(3, 1) == 1
        assert lca.lca(2, 2) == 2
        assert lca.lca(0, 3) == 0

    def test_star(self):
        tree = Graph(5)
        for leaf in range(1, 5):
            tree.add_edge(0, leaf)
        lca = EulerTourLCA(tree, 0)
        assert lca.lca(1, 2) == 0
        assert lca.lca(4, 4) == 4

    def test_matches_naive_on_random_trees(self):
        rng = random.Random(20)
        for _ in range(10):
            tree = random_tree(rng.randint(2, 80), rng)
            index = EulerTourLCA(tree, 0)
            for _ in range(50):
                u, v = rng.randrange(tree.n), rng.randrange(tree.n)
                assert index.lca(u, v) == naive_tree_lca(tree, 0, u, v)

    def test_is_ancestor(self):
        tree = Graph(4)
        tree.add_edge(0, 1)
        tree.add_edge(1, 2)
        tree.add_edge(0, 3)
        index = EulerTourLCA(tree, 0)
        assert index.is_ancestor(0, 2)
        assert index.is_ancestor(2, 2)
        assert not index.is_ancestor(3, 2)

    def test_query_cost_constant(self):
        rng = random.Random(21)
        big = EulerTourLCA(random_tree(5000, rng), 0)
        tracker = CostTracker()
        big.lca(4321, 1234, tracker)
        assert tracker.depth <= 12

    def test_vertex_bounds_checked(self):
        tree = Graph(2)
        tree.add_edge(0, 1)
        index = EulerTourLCA(tree, 0)
        with pytest.raises(GraphError):
            index.lca(0, 5)


class TestDagLCA:
    def test_diamond(self):
        #   0 -> 1 -> 3, 0 -> 2 -> 3
        dag = Digraph(4)
        dag.add_edge(0, 1)
        dag.add_edge(0, 2)
        dag.add_edge(1, 3)
        dag.add_edge(2, 3)
        index = DagLCAIndex(dag)
        assert index.lca(1, 2) == 0
        assert index.lca(3, 1) == 1  # 1 is an ancestor of 3
        assert index.all_lcas(1, 2) == [0]

    def test_no_common_ancestor(self):
        dag = Digraph(2)
        index = DagLCAIndex(dag)
        assert index.lca(0, 1) == -1
        assert index.all_lcas(0, 1) == []
        assert naive_dag_lca(dag, 0, 1) == -1

    def test_multiple_lcas_returns_a_valid_one(self):
        # Two incomparable common ancestors 0 and 1 of both 2 and 3.
        dag = Digraph(4)
        for ancestor in (0, 1):
            for descendant in (2, 3):
                dag.add_edge(ancestor, descendant)
        index = DagLCAIndex(dag)
        assert set(index.all_lcas(2, 3)) == {0, 1}
        assert index.lca(2, 3) in (0, 1)

    def test_representative_agrees_with_naive(self):
        rng = random.Random(22)
        for _ in range(10):
            dag = random_dag(40, 100, rng)
            index = DagLCAIndex(dag)
            table = DagLCAIndex(dag, all_pairs=True)
            for _ in range(60):
                u, v = rng.randrange(40), rng.randrange(40)
                representative = index.lca(u, v)
                assert representative == naive_dag_lca(dag, u, v)
                assert representative == table.lca(u, v)
                if representative != -1:
                    assert representative in index.all_lcas(u, v)

    def test_is_ancestor(self):
        dag = Digraph(3)
        dag.add_edge(0, 1)
        dag.add_edge(1, 2)
        index = DagLCAIndex(dag)
        assert index.is_ancestor(0, 2)
        assert not index.is_ancestor(2, 0)

    def test_rejects_cyclic_input(self):
        graph = Digraph(2)
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        with pytest.raises(GraphError):
            DagLCAIndex(graph)

    def test_all_pairs_query_cost_constant(self):
        rng = random.Random(23)
        index = DagLCAIndex(random_dag(60, 150, rng), all_pairs=True)
        tracker = CostTracker()
        index.lca(10, 50, tracker)
        assert tracker.depth == 1
