"""Unit tests for the relational storage substrate (repro.storage)."""

import random

import pytest

from repro.core.cost import CostTracker
from repro.core.errors import SchemaError
from repro.storage import (
    AttributeType,
    Database,
    Relation,
    Schema,
    uniform_int_relation,
)


class TestSchema:
    def test_positions(self):
        schema = Schema("R", [("a", AttributeType.INT), ("b", AttributeType.STR)])
        assert schema.arity == 2
        assert schema.position_of("b") == 1
        assert schema.has_attribute("a") and not schema.has_attribute("z")
        assert schema.attribute_names() == ("a", "b")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema("R", [("a", AttributeType.INT), ("a", AttributeType.INT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("R", [])

    def test_unknown_attribute_raises(self):
        schema = Schema("R", [("a", AttributeType.INT)])
        with pytest.raises(SchemaError):
            schema.position_of("b")

    def test_row_validation(self):
        schema = Schema("R", [("a", AttributeType.INT), ("f", AttributeType.BOOL)])
        schema.validate_row((1, True))
        with pytest.raises(SchemaError):
            schema.validate_row((1,))
        with pytest.raises(SchemaError):
            schema.validate_row(("x", True))
        with pytest.raises(SchemaError):
            # bool is not a valid INT (and 1 is not a valid BOOL)
            schema.validate_row((True, 1))


class TestRelation:
    @pytest.fixture
    def relation(self):
        schema = Schema("R", [("a", AttributeType.INT), ("b", AttributeType.INT)])
        relation = Relation(schema)
        relation.insert_many([(1, 10), (2, 20), (3, 30)])
        return relation

    def test_insert_and_len(self, relation):
        assert len(relation) == 3

    def test_fetch(self, relation):
        assert relation.fetch(1) == (2, 20)
        with pytest.raises(SchemaError):
            relation.fetch(99)

    def test_delete_tombstones(self, relation):
        relation.delete(1)
        assert len(relation) == 2
        with pytest.raises(SchemaError):
            relation.fetch(1)
        # Remaining row ids survive deletion.
        assert relation.fetch(2) == (3, 30)

    def test_scan_charges_per_slot(self, relation):
        tracker = CostTracker()
        rows = list(relation.scan(tracker))
        assert len(rows) == 3
        assert tracker.work == 3

    def test_select_and_exists(self, relation):
        assert relation.select(lambda row: row[0] >= 2) == [(2, 20), (3, 30)]
        assert relation.exists(lambda row: row[1] == 20)
        assert not relation.exists(lambda row: row[1] == 99)

    def test_exists_short_circuits(self, relation):
        tracker = CostTracker()
        assert relation.exists(lambda row: row[0] == 1, tracker)
        assert tracker.work == 1  # stopped at the first row

    def test_column_and_value(self, relation):
        assert relation.column("b") == [10, 20, 30]
        assert relation.value((2, 20), "b") == 20

    def test_encode_decode_roundtrip(self, relation):
        relation.delete(0)
        decoded = Relation.decode(relation.encode())
        assert decoded.schema == relation.schema
        assert decoded.rows() == relation.rows()

    def test_uniform_generator_deterministic(self):
        first = uniform_int_relation(50, random.Random(1))
        second = uniform_int_relation(50, random.Random(1))
        assert first.rows() == second.rows()
        assert len(first) == 50


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        relation = uniform_int_relation(5, random.Random(2), name="T")
        db.create(relation)
        assert db.relation("T") is relation
        assert list(db.relation_names()) == ["T"]

    def test_duplicate_relation_rejected(self):
        db = Database()
        db.create(uniform_int_relation(1, random.Random(3), name="T"))
        with pytest.raises(SchemaError):
            db.create(uniform_int_relation(1, random.Random(4), name="T"))

    def test_missing_relation_raises(self):
        with pytest.raises(SchemaError):
            Database().relation("nope")

    def test_index_attachment(self):
        db = Database()
        db.create(uniform_int_relation(5, random.Random(5), name="T"))
        db.attach_index("T", "a", "btree", object())
        assert db.index("T", "a", "btree") is not None
        assert db.maybe_index("T", "b", "btree") is None
        with pytest.raises(SchemaError):
            db.attach_index("T", "a", "btree", object())  # duplicate
        with pytest.raises(SchemaError):
            db.attach_index("T", "zzz", "btree", object())  # bad attribute
        with pytest.raises(SchemaError):
            db.index("T", "a", "hash")  # wrong kind

    def test_drop_removes_indexes(self):
        db = Database()
        db.create(uniform_int_relation(5, random.Random(6), name="T"))
        db.attach_index("T", "a", "btree", object())
        db.drop("T")
        assert list(db.relation_names()) == []
        assert list(db.index_keys()) == []
        with pytest.raises(SchemaError):
            db.drop("T")
