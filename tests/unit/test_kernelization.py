"""Unit tests for Buss kernelization and VC deciders (Section 4(9))."""

import random

import pytest

from repro.core.cost import CostTracker
from repro.graphs import Graph, gnm_graph
from repro.kernelization import (
    VCInstance,
    buss_kernelize,
    vc_branch_decide,
    vc_brute_force,
    vc_decide,
)


def triangle() -> Graph:
    graph = Graph(3)
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(0, 2)
    return graph


def star(leaves: int) -> Graph:
    graph = Graph(leaves + 1)
    for leaf in range(1, leaves + 1):
        graph.add_edge(0, leaf)
    return graph


class TestBussKernel:
    def test_high_degree_vertex_forced(self):
        kernel = buss_kernelize(VCInstance(star(10), 3))
        assert 0 in kernel.forced_vertices
        assert kernel.decided is True  # removing the hub leaves no edges

    def test_negative_budget_rejects(self):
        kernel = buss_kernelize(VCInstance(triangle(), -1))
        assert kernel.decided is False

    def test_edgeless_graph_accepts(self):
        kernel = buss_kernelize(VCInstance(Graph(5), 0))
        assert kernel.decided is True

    def test_too_many_edges_rejects(self):
        rng = random.Random(80)
        # max degree <= k is forced by using a large matching: 2k^2 + 2 edges
        # of degree 1 each cannot be covered by k vertices.
        k = 3
        edge_count = k * k + 1
        graph = Graph(2 * edge_count)
        for i in range(edge_count):
            graph.add_edge(2 * i, 2 * i + 1)
        kernel = buss_kernelize(VCInstance(graph, k))
        assert kernel.decided is False

    def test_kernel_size_bounded_by_k_squared(self):
        rng = random.Random(81)
        for n in (50, 100, 200, 400):
            graph = gnm_graph(n, 2 * n, rng)
            for k in (2, 4, 6):
                kernel = buss_kernelize(VCInstance(graph, k))
                if kernel.decided is None:
                    assert kernel.kernel_edges <= k * k
                    assert kernel.kernel_vertices <= 2 * k * k

    def test_kernelization_preserves_answers(self):
        rng = random.Random(82)
        for _ in range(150):
            n = rng.randint(2, 11)
            graph = gnm_graph(n, rng.randint(0, 2 * n), rng)
            k = rng.randint(0, 5)
            instance = VCInstance(graph, k)
            assert vc_decide(instance) == vc_brute_force(instance)


class TestBranchDecide:
    def test_empty_edge_set(self):
        assert vc_branch_decide(set(), 0)

    def test_budget_exhausted(self):
        assert not vc_branch_decide({(0, 1)}, 0)

    def test_triangle_needs_two(self):
        edges = set(triangle().edges())
        assert not vc_branch_decide(set(edges), 1)
        assert vc_branch_decide(set(edges), 2)


class TestFixedParameterBehaviour:
    def test_kernelized_query_cost_independent_of_graph_size(self):
        rng = random.Random(83)
        k = 4
        costs = {}
        for n in (100, 800):
            graph = gnm_graph(n, n // 2, rng)
            kernel = buss_kernelize(VCInstance(graph, k))
            tracker = CostTracker()
            if kernel.decided is None:
                vc_branch_decide(set(kernel.residual_edges), kernel.residual_budget, tracker)
            costs[n] = tracker.work
        # Post-kernel decision cost must not scale with |G|: the kernel is
        # bounded by k alone, so an 8x bigger graph stays within a small
        # constant factor (kernel contents differ, hence some slack).
        assert costs[800] <= 50 * max(costs[100], 1) + 1000

    def test_no_preprocessing_cost_grows_with_graph(self):
        rng = random.Random(84)
        k = 4
        small, big = CostTracker(), CostTracker()
        vc_decide(VCInstance(gnm_graph(100, 50, rng), k), small, kernelize=False)
        vc_decide(VCInstance(gnm_graph(1600, 800, rng), k), big, kernelize=False)
        assert big.work > 4 * small.work
