"""Gateway admission-control unit tests (ISSUE 9, satellite c).

The gateway is tested against stub backends -- no worker pool, no engine --
so these tests pin the *admission* semantics in isolation:

* up to ``max_inflight_per_dataset`` requests dispatch concurrently,
* up to ``queue_watermark`` more wait for a permit,
* everything past the watermark is rejected immediately with a structured
  ``Overloaded`` error frame (bounded buffering: the backend never sees
  more than ``max_inflight`` requests at once),
* per-dataset isolation: one saturated dataset does not shed another's
  traffic,
* protocol violations (unknown op, bad magic, oversized frame) answer
  structurally instead of silently dropping the connection.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import threading
import time

import pytest

from repro.core.errors import UnknownDatasetError
from repro.service.frontend import protocol
from repro.service.frontend.server import Gateway, GatewayConfig


class _BlackHoleBackend:
    """Accepts requests and never answers: the saturated-pool stand-in."""

    def __init__(self):
        self.submitted = []

    def submit(self, header, body, codec, on_done):
        self.submitted.append((header, on_done))

    def health(self):
        return {}

    def close(self):
        pass


class _EchoBackend:
    """Answers every request immediately with an ok frame."""

    def submit(self, header, body, codec, on_done):
        rheader = {"rid": header.get("rid"), "ok": True, "op": header.get("op")}
        on_done(rheader, protocol.encode_body("pong", codec), codec)

    def health(self):
        return {}

    def close(self):
        pass


class _RaisingBackend:
    """Raises synchronously from submit, like the supervisor does for an
    unknown dataset or a full worker queue."""

    def submit(self, header, body, codec, on_done):
        raise UnknownDatasetError(f"no dataset {header.get('dataset')!r}")

    def health(self):
        return {}

    def close(self):
        pass


@contextlib.contextmanager
def serving(backend, config=None):
    """Run a Gateway on a private event-loop thread; yield it, then drain."""
    gateway = Gateway(backend, config)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(gateway.start())
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "gateway did not start"
    try:
        yield gateway
    finally:
        async def drain():
            gateway.close()
            tasks = [t for t in asyncio.all_tasks() if t is not asyncio.current_task()]
            for t in tasks:
                t.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        asyncio.run_coroutine_threadsafe(drain(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)


@contextlib.contextmanager
def raw_connection(gateway):
    sock = socket.create_connection(("127.0.0.1", gateway.port), timeout=10)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    stream = sock.makefile("rwb")
    try:
        yield stream
    finally:
        stream.close()
        sock.close()


def _send(stream, op, rid, dataset, value=None):
    stream.write(protocol.pack_frame({"op": op, "rid": rid, "dataset": dataset}, value))
    stream.flush()


def _recv_error(stream):
    frame = protocol.read_frame(stream)
    assert frame is not None
    header, body, codec = frame
    assert header["ok"] is False
    return header, protocol.decode_body(body, codec)


def test_watermark_sheds_with_structured_overloaded_frames():
    backend = _BlackHoleBackend()
    config = GatewayConfig(max_inflight_per_dataset=2, queue_watermark=3)
    with serving(backend, config) as gateway:
        with raw_connection(gateway) as stream:
            # Pipeline 9 queries without reading: 2 dispatch, 3 wait for a
            # permit, 4 cross the watermark and must be shed.
            for rid in range(9):
                _send(stream, "query", rid, "d", {"kind": "k", "query": rid})
            rejected = [_recv_error(stream) for _ in range(4)]
            for header, payload in rejected:
                assert payload["type"] == "OverloadedError"
                assert "back off" in payload["message"]
            assert sorted(h["rid"] for h, _ in rejected) == [5, 6, 7, 8]
        assert gateway.counters["overloaded_rejections"] == 4
        # Bounded buffering: the backend saw exactly the permit holders.
        deadline = time.monotonic() + 5
        while len(backend.submitted) < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert len(backend.submitted) == 2


def test_admission_is_per_dataset():
    backend = _BlackHoleBackend()
    config = GatewayConfig(max_inflight_per_dataset=1, queue_watermark=0)
    with serving(backend, config) as gateway:
        with raw_connection(gateway) as stream:
            _send(stream, "query", 1, "a", {"kind": "k", "query": 1})
            _send(stream, "query", 2, "a", {"kind": "k", "query": 2})  # shed
            _send(stream, "query", 3, "b", {"kind": "k", "query": 3})  # admitted
            header, payload = _recv_error(stream)
            assert header["rid"] == 2
            assert payload["type"] == "OverloadedError"
        assert gateway.counters["overloaded_rejections"] == 1


def test_unknown_op_answers_and_keeps_the_connection():
    with serving(_EchoBackend()) as gateway:
        with raw_connection(gateway) as stream:
            _send(stream, "shutdown", 1, "d")
            header, payload = _recv_error(stream)
            assert payload["type"] == "ProtocolError"
            assert "unknown op" in payload["message"]
            # The stream position is intact: the next request still serves.
            _send(stream, "ping", 2, "")
            frame = protocol.read_frame(stream)
            assert frame is not None and frame[0]["ok"] is True
        assert gateway.counters["protocol_errors"] == 1
        assert gateway.counters["frames"] == 2


def test_malformed_frame_answers_then_hangs_up():
    with serving(_EchoBackend()) as gateway:
        with raw_connection(gateway) as stream:
            stream.write(b"XX" + bytes(10))
            stream.flush()
            _, payload = _recv_error(stream)
            assert payload["type"] == "ProtocolError"
            # A corrupt stream position cannot be resynchronized: EOF next.
            assert protocol.read_frame(stream) is None
        assert gateway.counters["protocol_errors"] == 1


def test_oversized_frame_rejected_without_buffering():
    config = GatewayConfig(max_frame_bytes=256)
    with serving(_EchoBackend(), config) as gateway:
        with raw_connection(gateway) as stream:
            oversized = protocol.pack_frame(
                {"op": "attach", "rid": 1, "dataset": "d"}, list(range(512))
            )
            assert len(oversized) > 256
            stream.write(oversized)
            stream.flush()
            _, payload = _recv_error(stream)
            assert payload["type"] == "ProtocolError"
            assert "exceeds" in payload["message"]


def test_synchronous_backend_error_maps_to_its_class():
    with serving(_RaisingBackend()) as gateway:
        with raw_connection(gateway) as stream:
            _send(stream, "query", 7, "ghost", {"kind": "k", "query": 1})
            header, payload = _recv_error(stream)
            assert header["rid"] == 7
            assert payload["type"] == "UnknownDatasetError"
            # The permit was released: the next request is admitted too.
            _send(stream, "query", 8, "ghost", {"kind": "k", "query": 1})
            header, payload = _recv_error(stream)
            assert header["rid"] == 8
        assert gateway.counters["overloaded_rejections"] == 0


# -- deadline admission (ISSUE 10) ---------------------------------------------


class _RecordingEchoBackend(_EchoBackend):
    """Echo backend that keeps the headers it was asked to serve."""

    def __init__(self):
        self.headers = []

    def submit(self, header, body, codec, on_done):
        self.headers.append(dict(header))
        super().submit(header, body, codec, on_done)


def _send_with_deadline(stream, op, rid, dataset, deadline_ms, value=None):
    header = {"op": op, "rid": rid, "dataset": dataset, "deadline_ms": deadline_ms}
    stream.write(protocol.pack_frame(header, value))
    stream.flush()


def test_expired_deadline_rejected_before_admission():
    """``deadline_ms <= 0`` means the budget was spent before the frame
    arrived: the gateway sheds it with a typed error without touching the
    admission permits or the backend, and the connection stays usable."""
    backend = _RecordingEchoBackend()
    with serving(backend) as gateway:
        with raw_connection(gateway) as stream:
            _send_with_deadline(stream, "query", 1, "d", 0,
                                {"kind": "k", "query": 1})
            header, payload = _recv_error(stream)
            assert header["rid"] == 1
            assert payload["type"] == "DeadlineExceededError"
            assert payload["details"]["op"] == "query"
            assert payload["details"]["dataset"] == "d"
            _send(stream, "ping", 2, "")
            assert protocol.read_frame(stream)[0]["ok"] is True
        assert gateway.counters["deadline_expired"] == 1
        assert gateway.counters["protocol_errors"] == 0
        # The expired frame never reached the backend.
        assert [h["op"] for h in backend.headers] == ["ping"]


def test_admitted_deadline_forwards_remaining_budget():
    """An in-budget frame is forwarded with ``deadline_ms`` rewritten to
    what is *left* after the permit wait -- never more than the client
    sent."""
    backend = _RecordingEchoBackend()
    with serving(backend) as gateway:
        with raw_connection(gateway) as stream:
            _send_with_deadline(stream, "query", 1, "d", 5000.0,
                                {"kind": "k", "query": 1})
            frame = protocol.read_frame(stream)
            assert frame is not None and frame[0]["ok"] is True
        (header,) = backend.headers
        assert 0 < header["deadline_ms"] <= 5000.0
        assert gateway.counters["deadline_expired"] == 0


def test_deadline_expiring_in_the_permit_queue_is_shed():
    """A request whose budget dies while waiting for an admission permit is
    shed *after* the wait with the same typed error, instead of burning a
    worker on an answer nobody wants."""
    backend = _BlackHoleBackend()
    config = GatewayConfig(max_inflight_per_dataset=1, queue_watermark=2)
    with serving(backend, config) as gateway:
        with raw_connection(gateway) as stream:
            # rid 1 holds the only permit forever (black-hole backend);
            # rid 2 queues behind it with a 50 ms budget.
            _send(stream, "query", 1, "d", {"kind": "k", "query": 1})
            _send_with_deadline(stream, "query", 2, "d", 50.0,
                                {"kind": "k", "query": 2})
            header, payload = _recv_error(stream)
            assert header["rid"] == 2
            assert payload["type"] == "DeadlineExceededError"
            assert "permit" in payload["message"]
        assert gateway.counters["deadline_expired"] == 1
        assert len(backend.submitted) == 1  # only the permit holder


def test_non_numeric_deadline_is_a_protocol_error():
    backend = _RecordingEchoBackend()
    with serving(backend) as gateway:
        with raw_connection(gateway) as stream:
            _send_with_deadline(stream, "query", 1, "d", "soon",
                                {"kind": "k", "query": 1})
            header, payload = _recv_error(stream)
            assert header["rid"] == 1
            assert payload["type"] == "ProtocolError"
            assert "deadline_ms" in payload["message"]
        assert gateway.counters["protocol_errors"] == 1
        assert backend.headers == []


def test_clean_disconnect_is_not_a_protocol_error():
    with serving(_EchoBackend()) as gateway:
        with raw_connection(gateway) as stream:
            _send(stream, "ping", 1, "")
            assert protocol.read_frame(stream)[0]["ok"] is True
        deadline = time.monotonic() + 5
        while gateway.counters["connections"] < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert gateway.counters["protocol_errors"] == 0
