"""Unit tests for sorted runs, hash index, sparse table, Fischer--Heun RMQ."""

import random

import pytest

from repro.core.cost import CostTracker
from repro.core.errors import IndexError_
from repro.indexes import (
    FischerHeunRMQ,
    HashIndex,
    KeyedRunIndex,
    SortedRunIndex,
    SparseTable,
    naive_range_min,
)


class TestSortedRun:
    def test_membership(self):
        index = SortedRunIndex([5, 3, 9, 3])
        assert index.contains(3)
        assert index.contains(9)
        assert not index.contains(4)
        assert len(index) == 4

    def test_empty(self):
        index = SortedRunIndex([])
        assert not index.contains(1)

    def test_rank(self):
        index = SortedRunIndex([10, 20, 30])
        assert index.rank(5) == 0
        assert index.rank(20) == 1
        assert index.rank(99) == 3

    def test_query_cost_logarithmic(self):
        big = SortedRunIndex(list(range(1 << 16)))
        tracker = CostTracker()
        big.contains(12345, tracker)
        assert tracker.depth <= 20


class TestKeyedRun:
    def test_lookup(self):
        index = KeyedRunIndex([(3, "c"), (1, "a"), (2, "b")])
        assert index.lookup(1) == "a"
        assert index.lookup(3) == "c"
        assert index.lookup(9) is None

    def test_items_sorted_by_key(self):
        index = KeyedRunIndex([(3, "c"), (1, "a")])
        assert index.items() == [(1, "a"), (3, "c")]


class TestHashIndex:
    def test_build_and_search(self):
        index = HashIndex.build([(1, "a"), (1, "b"), (2, "c")])
        assert sorted(index.search(1)) == ["a", "b"]
        assert index.contains(2)
        assert not index.contains(3)
        assert len(index) == 3
        assert index.distinct_keys() == 2

    def test_delete(self):
        index = HashIndex.build([(1, "a"), (1, "b")])
        assert index.delete(1, "a")
        assert index.search(1) == ["b"]
        assert not index.delete(1, "zz")
        assert index.delete(1)
        assert not index.contains(1)
        assert not index.delete(1)

    def test_probe_cost_constant(self):
        index = HashIndex.build([(i, None) for i in range(100_000)])
        tracker = CostTracker()
        index.contains(54321, tracker)
        assert tracker.depth == 1


class TestSparseTable:
    def test_matches_naive_on_random_arrays(self):
        rng = random.Random(4)
        for _ in range(20):
            array = [rng.randint(-9, 9) for _ in range(rng.randint(1, 120))]
            table = SparseTable(array)
            for _ in range(60):
                i = rng.randrange(len(array))
                j = rng.randrange(i, len(array))
                assert table.argmin(i, j) == naive_range_min(array, i, j)

    def test_leftmost_tie_break(self):
        table = SparseTable([5, 1, 1, 1, 5])
        assert table.argmin(0, 4) == 1
        assert table.argmin(2, 4) == 2

    def test_range_min_value(self):
        table = SparseTable([4, 2, 7])
        assert table.range_min(0, 2) == 2

    def test_bad_range_raises(self):
        table = SparseTable([1, 2, 3])
        with pytest.raises(IndexError_):
            table.argmin(2, 1)
        with pytest.raises(IndexError_):
            table.argmin(0, 3)

    def test_query_cost_constant(self):
        table = SparseTable(list(range(1 << 14, 0, -1)))
        tracker = CostTracker()
        table.argmin(17, 9000, tracker)
        assert tracker.depth <= 5


class TestFischerHeun:
    def test_matches_naive_on_random_arrays(self):
        rng = random.Random(5)
        for _ in range(15):
            array = [rng.randint(-20, 20) for _ in range(rng.randint(1, 400))]
            rmq = FischerHeunRMQ(array)
            for _ in range(80):
                i = rng.randrange(len(array))
                j = rng.randrange(i, len(array))
                assert rmq.argmin(i, j) == naive_range_min(array, i, j), (
                    array,
                    i,
                    j,
                )

    def test_single_element(self):
        rmq = FischerHeunRMQ([42])
        assert rmq.argmin(0, 0) == 0
        assert rmq.range_min(0, 0) == 42

    def test_signature_sharing(self):
        # A long repetitive array has far fewer signatures than blocks.
        array = [1, 2, 3, 0] * 256
        rmq = FischerHeunRMQ(array)
        if rmq.block_size > 1:
            block_count = (len(array) + rmq.block_size - 1) // rmq.block_size
            assert rmq.distinct_signatures < block_count

    def test_bad_range_raises(self):
        rmq = FischerHeunRMQ([1, 2])
        with pytest.raises(IndexError_):
            rmq.argmin(1, 0)

    def test_query_cost_constant_as_n_grows(self):
        small = FischerHeunRMQ(list(range(256, 0, -1)))
        big = FischerHeunRMQ(list(range(65536, 0, -1)))
        t_small, t_big = CostTracker(), CostTracker()
        small.argmin(3, 250, t_small)
        big.argmin(3, 65000, t_big)
        assert t_big.depth <= 2 * max(t_small.depth, 4)
