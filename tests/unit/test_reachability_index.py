"""Unit tests for the transitive-closure index (repro.indexes.reachability)."""

import random

import numpy as np
import pytest

from repro.core.cost import CostTracker
from repro.core.errors import GraphError
from repro.graphs import Digraph, gnm_digraph, is_reachable, social_digraph
from repro.indexes import TransitiveClosureIndex
from repro.parallel import ParallelMachine, transitive_closure_squaring


class TestClosureIndex:
    def test_chain(self):
        graph = Digraph(4)
        for v in range(3):
            graph.add_edge(v, v + 1)
        index = TransitiveClosureIndex(graph)
        assert index.reachable(0, 3)
        assert not index.reachable(3, 0)
        assert index.reachable(2, 2)  # reflexive

    def test_cycle_members_mutually_reachable(self):
        graph = Digraph(4)
        graph.add_edge(0, 1)
        graph.add_edge(1, 0)
        graph.add_edge(1, 2)
        index = TransitiveClosureIndex(graph)
        assert index.reachable(0, 1) and index.reachable(1, 0)
        assert index.reachable(0, 2) and not index.reachable(2, 1)

    def test_matches_bfs_on_random_digraphs(self):
        rng = random.Random(30)
        for _ in range(8):
            graph = gnm_digraph(40, 100, rng)
            index = TransitiveClosureIndex(graph)
            for _ in range(80):
                u, v = rng.randrange(40), rng.randrange(40)
                assert index.reachable(u, v) == is_reachable(graph, u, v)

    def test_descendants(self):
        graph = Digraph(4)
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        index = TransitiveClosureIndex(graph)
        assert index.descendants(0) == [0, 1, 2]
        assert index.descendants(3) == [3]

    def test_reachable_pair_count(self):
        graph = Digraph(3)
        graph.add_edge(0, 1)
        index = TransitiveClosureIndex(graph)
        # pairs: (0,0) (1,1) (2,2) (0,1)
        assert index.reachable_pair_count() == 4

    def test_pair_count_matches_matrix(self):
        rng = random.Random(31)
        graph = social_digraph(50, rng)
        index = TransitiveClosureIndex(graph)
        assert index.reachable_pair_count() == int(index.as_matrix().sum())

    def test_as_matrix_matches_nc_squaring(self):
        rng = random.Random(32)
        graph = gnm_digraph(25, 60, rng)
        index = TransitiveClosureIndex(graph)
        adjacency = np.zeros((25, 25), dtype=bool)
        for u, v in graph.edges():
            adjacency[u, v] = True
        closure = transitive_closure_squaring(adjacency, ParallelMachine(CostTracker()))
        assert (index.as_matrix() == closure).all()

    def test_query_cost_constant(self):
        rng = random.Random(33)
        index = TransitiveClosureIndex(gnm_digraph(400, 1200, rng))
        tracker = CostTracker()
        index.reachable(7, 311, tracker)
        assert tracker.depth == 1

    def test_vertex_bounds_checked(self):
        index = TransitiveClosureIndex(Digraph(2))
        with pytest.raises(GraphError):
            index.reachable(0, 5)
