"""Unit tests for the QueryClass/PiScheme API surface (repro.core.query)."""

import random

import pytest

from repro.core import CostTracker, PiScheme
from repro.core.query import Workload, default_sizes, stable_seed
from repro.queries import membership_class, point_selection_class


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed(1, "a", 2) == stable_seed(1, "a", 2)

    def test_distinguishes_parts(self):
        assert stable_seed(1, "a") != stable_seed(1, "b")
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_independent_of_hash_randomization(self):
        # The value is pinned: regression guard against reintroducing hash().
        assert stable_seed("x") == stable_seed("x")
        assert isinstance(stable_seed("x"), int)


class TestDefaultSizes:
    def test_geometric(self):
        sizes = default_sizes()
        assert all(b == 2 * a for a, b in zip(sizes, sizes[1:]))
        assert len(default_sizes(small=True)) < len(sizes)


class TestRewriteQuery:
    def test_lambda_rewriting_is_applied(self):
        """The paper's remark under Definition 1: a PTIME query-rewriting
        lambda(Q) composes with preprocessing.  Here: point queries are
        rewritten to degenerate range queries and answered by the range
        evaluator."""
        from repro.queries import btree_range_scheme

        range_scheme = btree_range_scheme()

        point_as_range = PiScheme(
            name="point-via-range",
            preprocess=range_scheme.preprocess,
            evaluate=range_scheme.evaluate,
            rewrite_query=lambda query: (query[0], query[1], query[1]),
        )
        query_class = point_selection_class()
        data, queries = query_class.sample_workload(128, seed=30, query_count=20)
        preprocessed = point_as_range.preprocess(data, CostTracker())
        for query in queries:
            assert point_as_range.answer(preprocessed, query, CostTracker()) == (
                query_class.pair_in_language(data, query)
            )

    def test_identity_when_absent(self):
        recorded = []

        scheme = PiScheme(
            name="probe",
            preprocess=lambda data, tracker: data,
            evaluate=lambda data, query, tracker: recorded.append(query) or True,
        )
        scheme.answer("D", ("raw", 1))
        assert recorded == [("raw", 1)]


class TestWorkload:
    def test_size_delegates_to_query_class(self):
        query_class = membership_class()
        data, queries = query_class.sample_workload(64, seed=31, query_count=5)
        workload = Workload(query_class=query_class, data=data, queries=queries)
        assert workload.size == 64
        assert workload.extras == {}

    def test_pair_in_language_tracks_cost(self):
        query_class = membership_class()
        data = query_class.generate_data(50, random.Random(32))
        tracker = CostTracker()
        query_class.pair_in_language(data, -1, tracker)  # guaranteed miss
        assert tracker.work == 50
