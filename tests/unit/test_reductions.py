"""Unit tests for NC-factor and F-reductions (Sections 5 and 7)."""

import random

import pytest

from repro.core import (
    CostTracker,
    PiScheme,
    compose,
    compose_f,
    padded_factorization,
    transfer_scheme,
    transfer_scheme_f,
    verify_f_reduction,
    verify_reduction,
)
from repro.core.errors import ReductionError
from repro.queries.bds import bds_problem, position_dict_scheme
from repro.queries.membership import membership_class
from repro.queries.selection import btree_range_scheme, point_selection_class
from repro.reductions_zoo import (
    membership_to_point_selection,
    point_to_range_selection,
    refactorize_to_bds,
    solve_and_emit_bds,
    witness_graph,
    witness_pair,
)
from repro.queries.bds import bds_trivial_query_class
from repro.queries.membership import membership_problem


def membership_pairs(count: int, seed: int):
    rng = random.Random(seed)
    query_class = membership_class()
    pairs = []
    for _ in range(count):
        data = query_class.generate_data(32, rng)
        for query in query_class.generate_queries(data, rng, 2):
            pairs.append((data, query))
    return pairs


class TestFReductions:
    def test_membership_to_point_selection_correct(self):
        violations = verify_f_reduction(
            membership_to_point_selection(), membership_pairs(10, seed=1)
        )
        assert violations == []

    def test_point_to_range_correct(self):
        reduction = point_to_range_selection()
        rng = random.Random(2)
        query_class = point_selection_class()
        pairs = []
        data = query_class.generate_data(64, rng)
        for query in query_class.generate_queries(data, rng, 20):
            pairs.append((data, query))
        assert verify_f_reduction(reduction, pairs) == []

    def test_composition_is_correct(self):
        # membership -> point -> range (Lemma 8 transitivity).
        composite = compose_f(
            membership_to_point_selection(), point_to_range_selection()
        )
        assert verify_f_reduction(composite, membership_pairs(10, seed=3)) == []

    def test_composition_requires_matching_middle(self):
        with pytest.raises(ReductionError):
            compose_f(point_to_range_selection(), point_to_range_selection())

    def test_transfer_scheme_yields_working_evaluator(self):
        # Pull the B+-tree range scheme back to list membership (Lemma 8).
        composite = compose_f(
            membership_to_point_selection(), point_to_range_selection()
        )
        scheme = transfer_scheme_f(composite, btree_range_scheme())
        data = (5, 17, 29, 17)
        preprocessed = scheme.preprocess(data, CostTracker())
        assert scheme.answer(preprocessed, 17, CostTracker())
        assert not scheme.answer(preprocessed, 18, CostTracker())


class TestSolveAndEmit:
    def test_witnesses(self):
        graph = witness_graph()
        from repro.graphs import breadth_depth_search, visit_position

        position = visit_position(breadth_depth_search(graph))
        u, v = witness_pair(True)
        assert position[u] < position[v]
        u, v = witness_pair(False)
        assert position[u] > position[v]

    def test_reduction_verifies_on_instances(self):
        problem = membership_problem()
        reduction = solve_and_emit_bds(problem)
        instances = problem.sample_instances(48, seed=4, count=12)
        assert verify_reduction(reduction, instances) == []

    def test_map_instance_lands_in_target(self):
        problem = membership_problem()
        reduction = solve_and_emit_bds(problem)
        instance = problem.sample_instances(32, seed=5, count=1)[0]
        bds_instance = reduction.map_instance(instance)
        assert reduction.target.member(bds_instance) == problem.member(instance)


class TestRefactorization:
    def test_refactorize_to_bds_verifies(self):
        trivial = bds_trivial_query_class()
        reduction = refactorize_to_bds(trivial)
        instances = reduction.source.sample_instances(24, seed=6, count=8)
        assert verify_reduction(reduction, instances, cross_pairs=False) == []

    def test_transfer_makes_trivial_class_answerable(self):
        # Lemma 3: pull the BDS position scheme back along the
        # re-factorization; the once-intractable class answers in O(log n).
        trivial = bds_trivial_query_class()
        reduction = refactorize_to_bds(trivial)
        scheme = transfer_scheme(reduction, position_dict_scheme())
        rng = random.Random(7)
        graph_instance = reduction.source.generate(24, rng)
        data = reduction.source_factorization.pi1(graph_instance)
        query = reduction.source_factorization.pi2(graph_instance)
        preprocessed = scheme.preprocess(data, CostTracker())
        tracker = CostTracker()
        answer = scheme.answer(preprocessed, query, tracker)
        assert answer == reduction.source.member(graph_instance)
        assert tracker.depth <= 10  # O(1)-ish, certainly not Theta(n+m)

    def test_transfer_rejects_factorization_mismatch(self):
        trivial = bds_trivial_query_class()
        reduction = refactorize_to_bds(trivial)
        scheme = PiScheme(
            name="wrong",
            preprocess=lambda data, tracker: data,
            evaluate=lambda data, query, tracker: False,
            factorization_name="some-other-factorization",
        )
        with pytest.raises(ReductionError):
            transfer_scheme(reduction, scheme)


class TestPaddedComposition:
    def test_padded_factorization_round_trip(self):
        problem = membership_problem()
        from repro.queries.membership import membership_factorization

        padded = padded_factorization(membership_factorization())
        for instance in problem.sample_instances(32, seed=8, count=5):
            padded.check_round_trip(instance)

    def test_padded_rho_rejects_mismatched_copies(self):
        from repro.core.errors import FactorizationError
        from repro.queries.membership import membership_factorization

        padded = padded_factorization(membership_factorization())
        with pytest.raises(FactorizationError):
            padded.rho(((1,), 1), ((2,), 2))

    def test_lemma2_composition_correct(self):
        # membership <=fa BDS (solve-and-emit), then BDS <=fa BDS
        # (refactorization is not composable here; use solve-and-emit twice).
        problem = membership_problem()
        first = solve_and_emit_bds(problem)
        second = solve_and_emit_bds(bds_problem())
        composite = compose(first, second)
        instances = problem.sample_instances(32, seed=9, count=8)
        assert verify_reduction(composite, instances, cross_pairs=False) == []

    def test_compose_requires_matching_middle(self):
        problem = membership_problem()
        first = solve_and_emit_bds(problem)
        with pytest.raises(ReductionError):
            compose(first, solve_and_emit_bds(problem))
