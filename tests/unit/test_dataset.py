"""Unit tests for the dataset-first serving API (ISSUE 4).

Headliners:

* ``test_one_session_serves_sharded_and_mutable_delta_kinds`` -- the
  acceptance scenario: one ``Dataset`` serves a sharded kind and a
  delta-maintained kind at once, with answers equal to the legacy paths;
* ``test_invalidate_evicts_every_kind_in_one_call`` -- the multi-kind
  invalidation regression guard (cached structures, shard plans, build
  locks);
* ``test_fingerprint_memo_cliff_is_observable`` -- the memo-cliff fix: the
  capacity is a constructor knob and degradations are counted instead of
  silent.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog import build_query_engine
from repro.core.errors import ServiceError, UnknownDatasetError
from repro.incremental.changes import ChangeKind, PointWrite, TupleChange
from repro.queries import (
    fischer_heun_scheme,
    membership_class,
    rmq_class,
    sorted_run_scheme,
)
from repro.service import ArtifactStore
from repro.service.engine import QueryEngine, QueryRequest

# The raw-payload QueryRequest form used throughout this module is
# deprecated (named sessions are the supported surface); its behavior
# is pinned here on purpose, so silence the migration warning.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def _flat_engine(**kwargs) -> QueryEngine:
    """An engine serving two kinds over the same flat-int-tuple payloads."""
    engine = QueryEngine(**kwargs)
    engine.register("membership", membership_class(), sorted_run_scheme())
    engine.register("rmq", rmq_class(), fischer_heun_scheme())
    return engine


# -- attach / detach lifecycle -------------------------------------------------


def test_attach_serves_all_registered_kinds_by_default():
    with _flat_engine() as engine:
        data = tuple(range(32))
        ds = engine.attach("events", data)
        assert ds.kinds == ["membership", "rmq"]
        assert ds.name == "events" and not ds.mutable and ds.version == 0
        assert ds.query("membership", 17) is True
        assert ds.query("membership", 99) is False
        assert ds.query("rmq", (4, 9, 4)) is True  # ascending: argmin is 4
        assert engine.datasets() == ["events"]
        assert engine.dataset("events") is ds


def test_attach_validates_inputs():
    engine = _flat_engine()
    engine.attach("taken", (1, 2))
    with pytest.raises(ServiceError, match="already attached"):
        engine.attach("taken", (3, 4))
    with pytest.raises(ServiceError, match="non-empty name"):
        engine.attach("", (1,))
    with pytest.raises(ServiceError, match="no scheme registered"):
        engine.attach("bad-kind", (1,), kinds=["nope"])
    with pytest.raises(ServiceError, match="shards must be"):
        engine.attach("bad-shards", (1,), shards=0)
    engine.close()
    with pytest.raises(ServiceError, match="closed"):
        engine.attach("late", (1,))
    with pytest.raises(ServiceError, match="no kinds"):
        QueryEngine().attach("empty", (1,))


def test_detach_releases_the_name_and_poisons_the_session():
    with _flat_engine() as engine:
        data = (5, 1, 4)
        ds = engine.attach("events", data)
        assert ds.query("membership", 5) is True
        ds.detach()
        assert ds.detached and engine.datasets() == []
        with pytest.raises(UnknownDatasetError):
            ds.query("membership", 5)
        with pytest.raises(UnknownDatasetError):
            ds.query_batch([("membership", 5)])
        with pytest.raises(UnknownDatasetError):
            ds.warm()
        with pytest.raises(UnknownDatasetError):
            engine.dataset("events")
        ds.detach()  # idempotent
        # The name is free again.
        fresh = engine.attach("events", data)
        assert fresh.query("membership", 5) is True


def test_dataset_is_a_context_manager():
    with _flat_engine() as engine:
        with engine.attach("events", (1, 2, 3)) as ds:
            assert ds.query("membership", 2) is True
        assert ds.detached and engine.datasets() == []


def test_engine_close_detaches_sessions():
    engine = _flat_engine()
    ds = engine.attach("events", (1, 2, 3))
    engine.close()
    assert ds.detached
    with pytest.raises(UnknownDatasetError):
        ds.query("membership", 1)


def test_restricted_kinds_reject_unlisted_queries():
    with _flat_engine() as engine:
        ds = engine.attach("events", (3, 1, 4), kinds=["membership"])
        assert ds.kinds == ["membership"]
        assert ds.query("membership", 3) is True
        with pytest.raises(ServiceError, match="does not serve"):
            ds.query("rmq", (0, 1, 0))


# -- request routing -----------------------------------------------------------


def test_named_requests_resolve_through_the_session():
    with _flat_engine() as engine:
        data = (3, 1, 4, 1, 5)
        engine.attach("events", data)
        assert engine.execute(QueryRequest("membership", dataset="events", query=4))
        assert not engine.execute(
            QueryRequest("membership", dataset="events", query=9)
        )
        answers = engine.execute_batch(
            [
                QueryRequest("membership", dataset="events", query=q)
                for q in (1, 2, 5)
            ]
        )
        assert answers == [True, False, True]
        with pytest.raises(UnknownDatasetError, match="ghost"):
            engine.execute(QueryRequest("membership", dataset="ghost", query=1))


def test_request_must_address_exactly_one_dataset_form():
    with _flat_engine() as engine:
        engine.attach("events", (1, 2))
        with pytest.raises(ServiceError, match="exactly one"):
            engine.execute(
                QueryRequest("membership", data=(1, 2), query=1, dataset="events")
            )
        with pytest.raises(ServiceError, match="neither"):
            engine.execute(QueryRequest("membership", query=1))


def test_query_batch_accepts_requests_and_pairs():
    with _flat_engine() as engine:
        data = (1, 2, 3)
        ds = engine.attach("events", data)
        answers = ds.query_batch(
            [
                ("membership", 2),
                QueryRequest("membership", dataset="events", query=9),
                QueryRequest("membership", data, 3),
            ],
            concurrent=False,
        )
        assert answers == [True, False, True]
        with pytest.raises(ServiceError, match="addresses dataset"):
            ds.query_batch([QueryRequest("membership", dataset="other", query=1)])
        with pytest.raises(ServiceError, match="payload"):
            ds.query_batch([QueryRequest("membership", (9, 9), 1)])
        with pytest.raises(ServiceError, match="pairs or QueryRequests"):
            ds.query_batch(["membership"])


def test_submit_answers_on_the_engine_pool():
    with _flat_engine() as engine:
        ds = engine.attach("events", tuple(range(100)))
        futures = [ds.submit("membership", q) for q in (7, 250, 99)]
        assert [future.result() for future in futures] == [True, False, True]


def test_warm_prebuilds_every_kind():
    with _flat_engine() as engine:
        ds = engine.attach("events", tuple(range(64))).warm()
        stats = engine.stats()
        assert stats.per_kind["membership"].builds == 1
        assert stats.per_kind["rmq"].builds == 1
        ds.query("membership", 5)
        assert engine.stats().per_kind["membership"].cache_hits == 1


# -- per-dataset shard override ------------------------------------------------


def test_attach_shard_override_serves_sharded_without_reregistering():
    with _flat_engine() as engine:  # membership registered with shards=1
        data = tuple(range(64))
        ds = engine.attach("events", data, kinds=["membership"], shards=4)
        assert ds.shards_for("membership") == 4
        assert ds.query("membership", 17) is True
        stats = engine.stats().per_kind["membership"]
        assert stats.builds == 0 and stats.shard_builds >= 1
        # The same engine still serves the monolithic path for payloads.
        assert engine.execute(QueryRequest("membership", data, 17)) is True
        assert engine.stats().per_kind["membership"].builds == 1


def test_shard_override_ignores_unshardable_kinds():
    engine = QueryEngine()
    engine.register("membership", membership_class(), sorted_run_scheme())
    scheme = fischer_heun_scheme()
    scheme.sharding = None  # pretend rmq cannot shard
    engine.register("rmq", rmq_class(), scheme)
    ds = engine.attach("events", tuple(range(16)), shards=4)
    assert ds.shards_for("membership") == 4
    assert ds.shards_for("rmq") == 1
    assert ds.query("rmq", (2, 7, 2)) is True
    engine.close()


# -- fingerprint memo: the cliff is a knob and is observable -------------------


def test_fingerprint_memo_size_is_validated():
    with pytest.raises(ServiceError, match="fingerprint_memo_size"):
        QueryEngine(fingerprint_memo_size=-1)


def test_fingerprint_memo_cliff_is_observable():
    with _flat_engine(fingerprint_memo_size=2) as engine:
        datasets = [tuple(range(i, i + 8)) for i in range(3)]
        for _ in range(3):  # cycle 3 live payloads through a 2-entry memo
            for data in datasets:
                engine.execute(QueryRequest("membership", data, data[0]))
        stats = engine.stats()
        per_kind = stats.per_kind["membership"]
        # Every request missed the memo: 3 first hashes + 6 re-hashes.
        assert per_kind.fingerprint_rehashes == 9
        assert per_kind.fingerprint_evictions >= 7
        assert stats.fingerprint_rehashes == 9  # engine-level rollup
        assert stats.fingerprint_evictions == per_kind.fingerprint_evictions


def test_large_memo_absorbs_the_same_workload():
    with _flat_engine(fingerprint_memo_size=64) as engine:
        datasets = [tuple(range(i, i + 8)) for i in range(3)]
        for _ in range(3):
            for data in datasets:
                engine.execute(QueryRequest("membership", data, data[0]))
        per_kind = engine.stats().per_kind["membership"]
        assert per_kind.fingerprint_rehashes == 3  # first sight only
        assert per_kind.fingerprint_evictions == 0


def test_named_sessions_never_touch_the_memo():
    """The dataset-first acceptance property: 0 re-hashes at steady state,
    even with a pathologically small memo."""
    with _flat_engine(fingerprint_memo_size=0) as engine:
        ds = engine.attach("events", tuple(range(32)))
        for q in range(20):
            ds.query("membership", q)
            engine.execute(QueryRequest("membership", dataset="events", query=q))
        stats = engine.stats()
        assert stats.fingerprint_rehashes == 0
        assert stats.fingerprint_evictions == 0
        assert stats.per_kind["membership"].builds == 1


# -- multi-kind invalidation / detach eviction (ISSUE 4 satellite) -------------


def _content_keys(engine, data):
    return [engine.artifact_key(kind, data) for kind in engine.kinds()]


def test_invalidate_evicts_every_kind_in_one_call():
    """A dataset served under several kinds -- one of them sharded -- loses
    *all* cached structures, shard plans, and build-lock entries in one
    ``invalidate`` call."""
    engine = QueryEngine()
    engine.register("membership", membership_class(), sorted_run_scheme(), shards=4)
    engine.register("rmq", rmq_class(), fischer_heun_scheme())
    data = list(range(48))
    engine.execute(QueryRequest("membership", data, 3))      # sharded resolve
    engine.execute(QueryRequest("rmq", data, (0, 9, 0)))     # monolithic resolve
    fingerprint = engine._fingerprint(data)
    rmq_key = engine.artifact_key("rmq", data)
    assert engine._cache.get(rmq_key, record=False) is not None
    assert any(key[1] == fingerprint for key in engine._planner._plans)
    # Park an idle build-lock entry, as an interrupted resolve would.
    engine._build_lock(rmq_key)

    data.append(999)
    engine.invalidate(data)

    assert engine._cache.get(rmq_key, record=False) is None
    assert not any(key[1] == fingerprint for key in engine._planner._plans)
    assert rmq_key not in engine._build_locks
    # And the next request really rebuilds from the new content.
    assert engine.execute(QueryRequest("membership", data, 999)) is True
    engine.close()


def test_detach_spares_content_shared_with_another_session():
    """Two sessions over equal content share one cached build; detaching one
    must not force the survivor to rebuild (review finding)."""
    with _flat_engine() as engine:
        first = engine.attach("a", (5, 1, 4), kinds=["membership"])
        second = engine.attach("b", tuple([5, 1, 4]), kinds=["membership"])
        assert first.fingerprint == second.fingerprint
        assert first.query("membership", 5) is True
        assert second.query("membership", 5) is True
        assert engine.stats().per_kind["membership"].builds == 1
        first.detach()
        assert second.query("membership", 1) is True  # still warm
        stats = engine.stats().per_kind["membership"]
        # One build ever: the shared structure was spared (the survivor's
        # serve plan keeps answering; no rebuild, no spurious miss).
        assert stats.builds == 1 and stats.cache_hits >= 1
        second.detach()  # last holder: now the content really evicts
        assert engine._cache.get(second.artifact_key("membership"), record=False) is None


def test_invalidate_spares_content_shared_with_a_named_session():
    with _flat_engine() as engine:
        payload = [5, 1, 4]
        ds = engine.attach("a", [5, 1, 4], kinds=["membership"])
        assert engine.execute(QueryRequest("membership", payload, 5)) is True
        assert engine.stats().per_kind["membership"].builds == 1
        payload.append(9)
        engine.invalidate(payload)  # equal *old* content still attached as "a"
        assert ds.query("membership", 5) is True
        stats = engine.stats().per_kind["membership"]
        assert stats.builds == 1 and stats.cache_hits >= 1


def test_detach_evicts_cached_structures_and_plans():
    engine = QueryEngine()
    engine.register("membership", membership_class(), sorted_run_scheme(), shards=4)
    engine.register("rmq", rmq_class(), fischer_heun_scheme())
    data = tuple(range(48))
    ds = engine.attach("events", data)
    ds.warm()
    fingerprint = ds.fingerprint
    rmq_key = ds.artifact_key("rmq")
    assert engine._cache.get(rmq_key, record=False) is not None
    assert any(key[1] == fingerprint for key in engine._planner._plans)
    ds.detach()
    assert engine._cache.get(rmq_key, record=False) is None
    assert not any(key[1] == fingerprint for key in engine._planner._plans)
    engine.close()


# -- mutable sessions ----------------------------------------------------------


def _insert(value):
    return TupleChange(ChangeKind.INSERT, (value,))


def _delete(value):
    return TupleChange(ChangeKind.DELETE, (value,))


def test_apply_changes_requires_mutable_attach():
    with _flat_engine() as engine:
        ds = engine.attach("events", (1, 2, 3))
        with pytest.raises(ServiceError, match="mutable=True"):
            ds.apply_changes([_insert(9)])


def test_one_session_serves_sharded_and_mutable_delta_kinds(tmp_path):
    """The ISSUE 4 acceptance scenario: one Dataset serves a sharded kind
    (touched-shard fallback on writes) and a monolithic delta-maintained
    kind, with answers equal to the legacy engine paths before and after
    mutation."""
    rng = random.Random(20130826)
    base = tuple(rng.randint(-100, 100) for _ in range(64))
    engine = QueryEngine(store=ArtifactStore(tmp_path))
    engine.register("membership", membership_class(), sorted_run_scheme(), shards=4)
    engine.register("rmq", rmq_class(), fischer_heun_scheme())
    legacy = _flat_engine()

    ds = engine.attach("sensor", base, mutable=True)
    assert ds.mutable and ds.shards_for("membership") == 4

    def check_equivalence(content):
        argmin = min(range(len(content)), key=lambda i: (content[i], i))
        probes = [content[0], content[-1], 101, -101]
        windows = [(0, len(content) - 1, argmin), (2, 10, 2), (5, 5, 5)]
        for probe in probes:
            assert ds.query("membership", probe) == legacy.execute(
                QueryRequest("membership", content, probe)
            )
        for window in windows:
            assert ds.query("rmq", window) == legacy.execute(
                QueryRequest("rmq", content, window)
            )

    check_equivalence(base)
    ds.apply_changes([PointWrite(5, -999), PointWrite(40, 999)])
    assert ds.version == 1
    post = ds.dataset()
    assert post[5] == -999 and post[40] == 999 and len(post) == len(base)
    check_equivalence(post)

    stats = engine.stats()
    # rmq took the delta path; the sharded membership kind fell back to a
    # touched-shards rebuild.
    assert stats.per_kind["rmq"].delta_batches == 1
    assert stats.per_kind["membership"].fallback_rebuilds == 1
    assert stats.per_kind["membership"].delta_batches == 0

    # Write-behind: the delta-maintained rmq structure persists under the
    # versioned lineage key.
    ds.flush()
    store = engine._store
    assert store.get(ds.artifact_key("rmq")) is not None
    assert ds.artifact_key("rmq").fingerprint != ds.fingerprint

    engine.close()
    legacy.close()


def test_mutable_session_batches_are_snapshot_atomic():
    with _flat_engine() as engine:
        ds = engine.attach("events", (1, 2, 3), kinds=["membership"], mutable=True)
        assert ds.query_batch([("membership", 1), ("membership", 9)]) == [True, False]
        ds.apply_changes([_insert(9), _delete(1)])
        assert ds.query_batch([("membership", 1), ("membership", 9)]) == [False, True]
        assert ds.version == 1
        # Screened-to-noop batches do not bump the version.
        ds.apply_changes([_delete(1234)])
        assert ds.version == 1


def test_mutable_session_materializes_kinds_lazily_after_changes():
    """A kind first queried *after* batches were applied builds from the
    current content, not the attach-time payload."""
    with _flat_engine() as engine:
        ds = engine.attach("events", (5, 1, 4), mutable=True)
        ds.apply_changes([_insert(77)])  # no structure materialized yet
        assert ds.query("membership", 77) is True
        # rmq materializes even later, over the 4-element content.
        assert ds.query("rmq", (0, 3, 1)) is True  # argmin of (5,1,4,77) is 1
        stats = engine.stats()
        assert stats.per_kind["membership"].queries == 1
        assert stats.per_kind["rmq"].queries == 1


def test_mutable_session_does_not_touch_the_caller_object():
    with _flat_engine() as engine:
        payload = [3, 1, 4]
        ds = engine.attach("events", payload, kinds=["membership"], mutable=True)
        ds.apply_changes([_insert(9)])
        assert payload == [3, 1, 4]
        assert ds.dataset() == (3, 1, 4, 9)


def test_mutable_warm_materializes_under_the_latch():
    with _flat_engine() as engine:
        ds = engine.attach("events", (5, 1, 4), mutable=True).warm()
        stats = engine.stats()
        assert stats.per_kind["membership"].builds == 1
        assert stats.per_kind["rmq"].builds == 1
        assert ds.query("membership", 5) is True
        assert engine.stats().per_kind["membership"].builds == 1  # no rebuild


def test_mutable_delta_refusal_falls_back_to_rebuild():
    """An rmq structure refuses length-changing TupleChanges mid-session:
    the batch still applies atomically through a rebuild."""
    with _flat_engine() as engine:
        ds = engine.attach("events", (5, 1, 4), mutable=True).warm()
        ds.apply_changes([_insert(0)])
        assert ds.query("membership", 0) is True
        assert ds.query("rmq", (0, 3, 3)) is True  # argmin of (5,1,4,0) is 3
        stats = engine.stats()
        # membership folded the insert in place; rmq refused and rebuilt.
        assert stats.per_kind["membership"].delta_batches == 1
        assert stats.per_kind["rmq"].fallback_rebuilds == 1


def test_mutable_session_reuses_cache_shared_structures_safely():
    """A structure already resolved for payload requests is privatized
    through the codec before delta maintenance ever touches it."""
    with _flat_engine() as engine:
        data = (5, 1, 4)
        assert engine.execute(QueryRequest("membership", data, 5)) is True
        ds = engine.attach("events", data, kinds=["membership"], mutable=True)
        ds.apply_changes([_insert(9)])
        assert ds.query("membership", 9) is True
        # The cache-shared structure still answers for the *old* content.
        assert engine.execute(QueryRequest("membership", data, 9)) is False


def test_mutable_session_with_non_serializable_delta_scheme():
    from repro.core.query import PiScheme
    from repro.indexes.sorted_run import SortedRunIndex

    base = sorted_run_scheme()
    scheme = PiScheme(
        name="opaque-delta",
        preprocess=base.preprocess,
        evaluate=base.evaluate,
        apply_delta=base.apply_delta,
    )
    assert scheme.supports_delta and not scheme.serializable
    with QueryEngine() as engine:
        engine.register("membership", membership_class(), scheme)
        ds = engine.attach("events", (5, 1, 4), mutable=True)
        assert ds.query("membership", 5) is True  # private build (no codec)
        ds.apply_changes([_insert(9)])
        assert ds.query("membership", 9) is True
        assert engine.stats().per_kind["membership"].delta_batches == 1


def test_anonymous_adapter_sessions_expose_engine_kinds_and_detach():
    with _flat_engine() as engine:
        data = (1, 2, 3)
        engine.execute(QueryRequest("membership", data, 1))
        session = engine._anonymous_attach(data)
        assert session.name is None and session.kinds == ["membership", "rmq"]
        session.detach()  # routes through invalidate(); memo entry dropped
        assert session.detached
        # The payload path still works: a fresh anonymous session is minted.
        assert engine.execute(QueryRequest("membership", data, 2)) is True


def test_build_query_engine_attach_round_trip():
    """The catalog glue serves named sessions for every registered kind."""
    with build_query_engine() as engine:
        query_class, _ = engine.registration("list-membership")
        data, queries = query_class.sample_workload(96, 3, 8)
        ds = engine.attach("workload", data, kinds=["list-membership"])
        for query in queries:
            assert ds.query("list-membership", query) == query_class.pair_in_language(
                data, query
            )
        assert engine.stats().fingerprint_rehashes == 0
