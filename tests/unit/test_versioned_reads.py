"""Lock-free versioned reads for mutable datasets (ISSUE 8).

Headliners:

* ``test_versioned_stress_never_torn`` -- 4 reader threads race 2 writer
  threads over each of the five delta-maintained kinds; every batch-atomic
  read must be consistent with some fully-applied version (each writer
  maintains an exactly-one-of-two invariant over elements it owns, so a
  torn snapshot shows up as both-or-neither).
* ``test_mutable_serve_path_is_latch_free`` -- the serve path acquires no
  ``SnapshotLatch`` and never waits on a ``Condition``; readers complete
  even while a writer holds the writer mutex.
* Regression pins for the three satellite bugfixes: latch release
  underflow, invisible failed serves (``serve_errors``), and the unstable
  ``repr``-based lineage digest.
"""

from __future__ import annotations

import threading

import pytest

from repro.catalog import build_query_engine
from repro.core.errors import DeltaError
from repro.core.query import PiScheme
from repro.graphs.graph import Digraph
from repro.incremental.changes import ChangeKind, EdgeChange, PointWrite, TupleChange
from repro.service.engine import EngineStats, QueryEngine
from repro.service.mutable import (
    SnapshotLatch,
    advance_lineage,
    canonical_change_bytes,
)
from repro.queries import membership_class, sorted_run_scheme


def _insert(*row):
    return TupleChange(ChangeKind.INSERT, tuple(row))


def _delete(*row):
    return TupleChange(ChangeKind.DELETE, tuple(row))


# -- 4 readers / 2 writers over all five delta-maintained kinds ----------------

_M = 10**6
_P = 10**7

#: Per kind: dataset, pre-thread setup batch, two writers (each an
#: alternating [forward, backward] batch pair over elements only that
#: writer touches), the probe list, and the invariant every batch-atomic
#: answer vector must satisfy in *any* fully-applied version.
_STRESS_CASES = {
    "list-membership": dict(
        data=tuple(range(64)) + (10001, 10003),
        setup=None,
        writers=[
            ([_delete(10001), _insert(10002)], [_delete(10002), _insert(10001)]),
            ([_delete(10003), _insert(10004)], [_delete(10004), _insert(10003)]),
        ],
        probes=[10001, 10002, 10003, 10004],
        check=lambda a: a[0] != a[1] and a[2] != a[3],
    ),
    "point-selection": dict(
        data=None,  # sample relation, filled in by the test
        setup=[_insert(_P + 1, 0), _insert(_P + 3, 0)],
        writers=[
            ([_delete(_P + 1, 0), _insert(_P + 2, 0)],
             [_delete(_P + 2, 0), _insert(_P + 1, 0)]),
            ([_delete(_P + 3, 0), _insert(_P + 4, 0)],
             [_delete(_P + 4, 0), _insert(_P + 3, 0)]),
        ],
        probes=[("a", _P + 1), ("a", _P + 2), ("a", _P + 3), ("a", _P + 4)],
        check=lambda a: a[0] != a[1] and a[2] != a[3],
    ),
    "minimum-range-query": dict(
        # Writer 0 owns positions 0/1, writer 1 owns 2/3: exactly one of
        # each pair holds the window minimum (-M vs +M) in any version.
        data=(-_M, _M, -_M, _M) + tuple(range(100, 160)),
        setup=None,
        writers=[
            ([PointWrite(0, _M), PointWrite(1, -_M)],
             [PointWrite(0, -_M), PointWrite(1, _M)]),
            ([PointWrite(2, _M), PointWrite(3, -_M)],
             [PointWrite(2, -_M), PointWrite(3, _M)]),
        ],
        probes=[(0, 1, 0), (0, 1, 1), (2, 3, 2), (2, 3, 3)],
        check=lambda a: a[0] != a[1] and a[2] != a[3],
    ),
    "topk-threshold": dict(
        # Exactly one high-scoring row per writer in any version, so the
        # count of rows with weighted score >= 9999 is always exactly 2: a
        # torn batch shows up as a 1- or 3-row count.
        data=None,  # sample table + the two initial high rows
        setup=None,
        writers=[
            ([_delete(5000, 5000), _insert(6000, 6000)],
             [_delete(6000, 6000), _insert(5000, 5000)]),
            ([_delete(7000, 7000), _insert(8000, 8000)],
             [_delete(8000, 8000), _insert(7000, 7000)]),
        ],
        probes=[((1, 1), 2, 9999), ((1, 1), 3, 9999)],
        check=lambda a: a[0] is True and a[1] is False,
    ),
    "reachability": dict(
        # Each batch contains an edge delete, which the insert-only closure
        # maintenance refuses -- every write goes through the fallback
        # rebuild, stressing the rebuild-then-publish path.
        data=Digraph(8, [(0, 1), (4, 5)]),
        setup=None,
        writers=[
            ([EdgeChange(ChangeKind.DELETE, 0, 1), EdgeChange(ChangeKind.INSERT, 2, 3)],
             [EdgeChange(ChangeKind.DELETE, 2, 3), EdgeChange(ChangeKind.INSERT, 0, 1)]),
            ([EdgeChange(ChangeKind.DELETE, 4, 5), EdgeChange(ChangeKind.INSERT, 6, 7)],
             [EdgeChange(ChangeKind.DELETE, 6, 7), EdgeChange(ChangeKind.INSERT, 4, 5)]),
        ],
        probes=[(0, 1), (2, 3), (4, 5), (6, 7)],
        check=lambda a: a[0] != a[1] and a[2] != a[3],
    ),
}


@pytest.mark.parametrize("kind", sorted(_STRESS_CASES))
def test_versioned_stress_never_torn(kind):
    case = _STRESS_CASES[kind]
    batches_per_writer = 12 if kind == "reachability" else 30
    with build_query_engine() as engine:
        data = case["data"]
        if data is None:
            query_class, _ = engine.registration(kind)
            if kind == "point-selection":
                data, _queries = query_class.sample_workload(64, 5, 0)
            else:  # topk-threshold
                table, _queries = query_class.sample_workload(48, 11, 0)
                data = tuple(table) + ((5000, 5000), (7000, 7000))
        ds = engine.attach("stress", data, kinds=[kind], mutable=True)
        if case["setup"]:
            ds.apply_changes(case["setup"])
        requests = [(kind, probe) for probe in case["probes"]]
        assert case["check"](ds.query_batch(requests)), "initial state"
        violations = []
        done = threading.Event()

        def read_loop():
            while not done.is_set():
                answers = ds.query_batch(requests)
                if not case["check"](answers):
                    violations.append(answers)
                    return

        def write_loop(writer):
            forward, backward = case["writers"][writer]
            for step in range(batches_per_writer):
                ds.apply_changes(forward if step % 2 == 0 else backward)

        readers = [threading.Thread(target=read_loop) for _ in range(4)]
        writers = [
            threading.Thread(target=write_loop, args=(writer,))
            for writer in range(2)
        ]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        done.set()
        for thread in readers:
            thread.join()
        assert not violations, f"torn snapshot(s) observed: {violations[:3]}"
        setup_batches = 1 if case["setup"] else 0
        assert ds.version == 2 * batches_per_writer + setup_batches
        assert case["check"](ds.query_batch(requests)), "final state"
        ds.detach()


# -- the serve path is latch-free ----------------------------------------------


def test_mutable_serve_path_is_latch_free(monkeypatch):
    """No SnapshotLatch acquisition and no Condition.wait while serving."""
    with QueryEngine() as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        ds = engine.attach("events", (1, 2, 3), mutable=True)
        handle = engine.open_dataset("membership", (1, 2, 3))
        # Materialize both serving surfaces before arming the tripwires.
        assert ds.query("membership", 2) is True
        assert handle.query(2) is True

        def tripwire(*args, **kwargs):
            raise AssertionError("shared lock touched on the serve path")

        monkeypatch.setattr(SnapshotLatch, "acquire_read", tripwire)
        monkeypatch.setattr(SnapshotLatch, "release_read", tripwire)
        monkeypatch.setattr(threading.Condition, "wait", tripwire)
        try:
            assert ds.query("membership", 2) is True
            assert ds.query_batch([("membership", 2), ("membership", 9)]) == [
                True,
                False,
            ]
            assert handle.query(3) is True
            assert handle.query_batch([1, 9]) == [True, False]
        finally:
            monkeypatch.undo()
        handle.close()
        ds.detach()


def test_readers_complete_while_writer_mutex_is_held():
    """A reader never blocks on the writers' mutex: holding it for the
    whole test must not delay a concurrent query."""
    with QueryEngine() as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        ds = engine.attach("events", (1, 2, 3), mutable=True)
        assert ds.query("membership", 1) is True  # materialize first
        mutex = ds._mutable._versions.writer_mutex
        results = []
        assert mutex.acquire(timeout=1)
        try:
            reader = threading.Thread(
                target=lambda: results.append(
                    ds.query_batch([("membership", 1), ("membership", 9)])
                )
            )
            reader.start()
            reader.join(timeout=5)
            assert not reader.is_alive(), "reader blocked on the writer mutex"
        finally:
            mutex.release()
        assert results == [[True, False]]
        ds.detach()


# -- satellite: SnapshotLatch.release_read underflow ---------------------------


def test_release_read_underflow_raises():
    latch = SnapshotLatch()
    with pytest.raises(RuntimeError, match="release_read"):
        latch.release_read()
    # Balanced use still works, and the latch is not poisoned ...
    latch.acquire_read()
    latch.release_read()
    with latch.write():
        pass
    # ... but one release too many raises instead of going negative (which
    # would admit a writer during a still-active read).
    latch.acquire_read()
    latch.release_read()
    with pytest.raises(RuntimeError, match="release_read"):
        latch.release_read()
    with latch.write():
        pass


# -- satellite: failed serves are visible in stats -----------------------------


def _boom_scheme() -> PiScheme:
    def preprocess(data, tracker):
        return tuple(data)

    def evaluate(structure, query, tracker):
        raise RuntimeError("kernel boom")

    return PiScheme(name="boom", preprocess=preprocess, evaluate=evaluate)


def test_serve_errors_counted_for_mutable_sessions():
    with QueryEngine() as engine:
        engine.register("boom", membership_class(), _boom_scheme())
        ds = engine.attach("events", (1, 2, 3), mutable=True)
        with pytest.raises(RuntimeError, match="kernel boom"):
            ds.query("boom", 1)
        with pytest.raises(RuntimeError, match="kernel boom"):
            ds.query_batch([("boom", 1), ("boom", 2)])
        stats = engine.stats().per_kind["boom"]
        assert stats.serve_errors == 3  # one single + a batch of two
        assert stats.queries == 0  # successes only
        assert engine.stats().health()["serve_errors"] == 3
        ds.detach()


def test_serve_errors_counted_for_immutable_plans_and_handles():
    with QueryEngine() as engine:
        engine.register("boom", membership_class(), _boom_scheme())
        ds = engine.attach("events", (1, 2, 3))
        with pytest.raises(RuntimeError, match="kernel boom"):
            ds.query("boom", 1)
        handle = engine.open_dataset("boom", (4, 5))
        with pytest.raises(RuntimeError, match="kernel boom"):
            handle.query(4)
        stats = engine.stats().per_kind["boom"]
        assert stats.serve_errors == 2
        assert stats.queries == 0
        handle.close()
        ds.detach()


def test_serve_errors_is_a_health_field():
    assert "serve_errors" in EngineStats.HEALTH_FIELDS


# -- satellite: canonical (process-stable) lineage digests ---------------------


def test_advance_lineage_digests_are_pinned():
    """The canonical encoding is part of the artifact-identity contract:
    these digests must never change across processes or releases (a change
    silently orphans every persisted versioned artifact)."""
    batch = [
        TupleChange(ChangeKind.INSERT, (1, 2)),
        TupleChange(ChangeKind.DELETE, ("x",)),
        EdgeChange(ChangeKind.INSERT, 0, 7),
        PointWrite(3, -5),
    ]
    assert [canonical_change_bytes(change) for change in batch] == [
        b"tuple:insert:(1,2)",
        b"tuple:delete:('x')",
        b"edge:insert:0>7",
        b"point:3=-5",
    ]
    assert (
        advance_lineage("seed-fingerprint", 1, batch)
        == "d4166d7cdf8975f45a8fa8ec6e5aac01b0053197d559eec59457f994667e06af"
    )
    assert (
        advance_lineage("seed-fingerprint", 2, batch)
        == "6613a3ca22c29cc51a88d559bad3c335cbad78857bde061d5a2c4e66b4414a94"
    )
    # Fresh-but-equal change records digest identically: identity (and
    # memory address) must never leak into the content identity.
    clone = [
        TupleChange(ChangeKind.INSERT, (1, 2)),
        TupleChange(ChangeKind.DELETE, ("x",)),
        EdgeChange(ChangeKind.INSERT, 0, 7),
        PointWrite(3, -5),
    ]
    assert advance_lineage("seed-fingerprint", 1, clone) == advance_lineage(
        "seed-fingerprint", 1, batch
    )


def test_lineage_rejects_unstable_change_values():
    class Opaque:
        """Default repr embeds the memory address: unstable per process."""

    with pytest.raises(DeltaError, match="canonical"):
        canonical_change_bytes(PointWrite(0, Opaque()))
    with pytest.raises(DeltaError, match="canonical"):
        # frozenset repr follows hash order: unstable across processes.
        canonical_change_bytes(PointWrite(0, frozenset({1, 2})))
    with pytest.raises(DeltaError, match="canonical"):
        canonical_change_bytes(object())  # unknown change record type


def test_unstable_change_rejected_before_anything_mutates():
    class Opaque:
        pass

    with QueryEngine() as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        handle = engine.open_dataset("membership", (1, 2, 3))
        with pytest.raises(DeltaError):
            handle.apply_changes([PointWrite(0, Opaque())])
        assert handle.version == 0  # batch atomicity: nothing applied
        assert handle.query(1) is True
        handle.close()


def test_equal_histories_share_versioned_identity():
    fingerprints = []
    for _ in range(2):
        with QueryEngine() as engine:
            engine.register("membership", membership_class(), sorted_run_scheme())
            handle = engine.open_dataset("membership", (1, 2, 3))
            # Fresh change objects each round: equal histories must share
            # the identity even though the records are distinct objects.
            handle.apply_changes([_insert(9), _delete(1)])
            fingerprints.append(handle.fingerprint())
            handle.close()
    assert fingerprints[0] == fingerprints[1]
