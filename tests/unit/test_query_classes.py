"""Unit tests for the case-study query classes (naive semantics, generators,
and scheme-vs-naive agreement on fixed workloads)."""

import random

import pytest

from repro.core import CostTracker
from repro.queries import (
    bds_query_class,
    bds_trivial_query_class,
    btree_point_scheme,
    btree_range_scheme,
    closure_scheme,
    compression_scheme,
    cvp_factorized_class,
    cvp_trivial_class,
    dag_bitset_scheme,
    dag_lca_class,
    euler_tour_scheme,
    fischer_heun_scheme,
    gate_table_scheme,
    hash_point_scheme,
    kernel_scheme,
    membership_class,
    no_preprocessing_scheme,
    point_selection_class,
    position_dict_scheme,
    position_index_scheme,
    range_selection_class,
    reachability_class,
    reevaluate_scheme,
    rmq_class,
    sorted_run_scheme,
    sparse_table_scheme,
    tree_lca_class,
    vc_fixed_k_class,
    views_scheme,
)

#: Every (query class, scheme) pair in the catalog, exercised identically.
CLASS_SCHEME_PAIRS = [
    (point_selection_class, btree_point_scheme),
    (point_selection_class, hash_point_scheme),
    (range_selection_class, btree_range_scheme),
    (range_selection_class, views_scheme),
    (membership_class, sorted_run_scheme),
    (rmq_class, fischer_heun_scheme),
    (rmq_class, sparse_table_scheme),
    (tree_lca_class, euler_tour_scheme),
    (dag_lca_class, dag_bitset_scheme),
    (reachability_class, closure_scheme),
    (reachability_class, compression_scheme),
    (bds_query_class, position_index_scheme),
    (bds_query_class, position_dict_scheme),
    (bds_trivial_query_class, no_preprocessing_scheme),
    (cvp_factorized_class, gate_table_scheme),
    (cvp_trivial_class, reevaluate_scheme),
    (vc_fixed_k_class, kernel_scheme),
]


@pytest.mark.parametrize(
    "make_class,make_scheme",
    CLASS_SCHEME_PAIRS,
    ids=[f"{c.__name__}/{s.__name__}" for c, s in CLASS_SCHEME_PAIRS],
)
def test_scheme_agrees_with_naive(make_class, make_scheme):
    query_class = make_class()
    scheme = make_scheme()
    data, queries = query_class.sample_workload(size=96, seed=11, query_count=24)
    preprocessed = scheme.preprocess(data, CostTracker())
    for query in queries:
        expected = query_class.pair_in_language(data, query)
        assert scheme.answer(preprocessed, query, CostTracker()) == expected, query


@pytest.mark.parametrize(
    "make_class",
    sorted({pair[0] for pair in CLASS_SCHEME_PAIRS}, key=lambda f: f.__name__),
    ids=lambda f: f.__name__,
)
def test_workloads_are_deterministic_and_mixed(make_class):
    query_class = make_class()
    data_a, queries_a = query_class.sample_workload(size=80, seed=5, query_count=30)
    data_b, queries_b = query_class.sample_workload(size=80, seed=5, query_count=30)
    assert queries_a == queries_b
    answers = {
        query_class.pair_in_language(data_a, q) for q in queries_a
    }
    # Workloads must mix yes- and no-instances, or certification proves
    # nothing about correctness.
    assert answers == {True, False}, f"degenerate workload for {query_class.name}"


def test_point_selection_naive_cost_linear():
    query_class = point_selection_class()
    rng = random.Random(12)
    small = query_class.generate_data(128, rng)
    big = query_class.generate_data(4096, rng)
    t_small, t_big = CostTracker(), CostTracker()
    # Miss probes force a full scan.
    query_class.evaluate(small, ("a", -1), t_small)
    query_class.evaluate(big, ("a", -1), t_big)
    assert t_big.work == t_small.work * 32


def test_bds_naive_is_linear_but_indexed_is_log():
    query_class = bds_query_class()
    data, queries = query_class.sample_workload(size=512, seed=13, query_count=4)
    scheme = position_index_scheme()
    preprocessed = scheme.preprocess(data, CostTracker())
    naive_tracker, indexed_tracker = CostTracker(), CostTracker()
    for query in queries:
        query_class.evaluate(data, query, naive_tracker)
        scheme.answer(preprocessed, query, indexed_tracker)
    assert naive_tracker.work > 50 * indexed_tracker.work


def test_data_sizes_report_the_sweep_axis():
    for make_class in (point_selection_class, membership_class, rmq_class):
        query_class = make_class()
        data = query_class.generate_data(200, random.Random(14))
        assert query_class.size_of_data(data) == 200
