"""Unit tests for top-k with early termination (paper S8(5) extension)."""

import random

import pytest

from repro.core import CostTracker
from repro.queries import TopKIndex, threshold_algorithm_scheme, topk_class


def brute_force_kth(table, weights, k):
    aggregates = sorted(
        (sum(w * v for w, v in zip(weights, row)) for row in table), reverse=True
    )
    return aggregates[min(k, len(aggregates)) - 1]


def random_table(rng, n, arity=2, high=100):
    return tuple(
        tuple(rng.randint(0, high) for _ in range(arity)) for _ in range(n)
    )


class TestThresholdAlgorithm:
    def test_matches_brute_force_on_random_workloads(self):
        rng = random.Random(500)
        for _ in range(40):
            table = random_table(rng, rng.randint(1, 60))
            index = TopKIndex(table)
            for _ in range(20):
                weights = (rng.randint(1, 4), rng.randint(1, 4))
                k = rng.randint(1, 8)
                theta = rng.randint(0, 8 * 100)
                expected = brute_force_kth(table, weights, k) >= theta
                answer, _ = index.kth_score_at_least(weights, k, theta)
                assert answer == expected, (table, weights, k, theta)

    def test_early_termination_on_easy_queries(self):
        # A clear winner: theta below the top scores decides in O(k) rounds.
        table = tuple((1000 - i, 1000 - i) for i in range(5000))
        index = TopKIndex(table)
        answer, accesses = index.kth_score_at_least((1, 1), 3, 100)
        assert answer
        assert accesses < 50  # nowhere near 2 * 5000 sorted accesses

    def test_early_termination_on_hopeless_thresholds(self):
        table = tuple((i % 50, i % 37) for i in range(5000))
        index = TopKIndex(table)
        answer, accesses = index.kth_score_at_least((1, 1), 3, 10**9)
        assert not answer
        assert accesses < 50  # tau drops below theta immediately

    def test_k_larger_than_table(self):
        index = TopKIndex(((5, 5), (1, 1)))
        answer, _ = index.kth_score_at_least((1, 1), 10, 2)
        assert answer  # k clamps to 2; 2nd best = 2 >= 2

    def test_bad_queries_rejected(self):
        index = TopKIndex(((1, 2),))
        with pytest.raises(ValueError):
            index.kth_score_at_least((1,), 1, 0)  # wrong arity
        with pytest.raises(ValueError):
            index.kth_score_at_least((1, 1), 0, 0)  # k < 1

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            TopKIndex(())


class TestQueryClass:
    def test_scheme_agrees_with_naive(self):
        query_class = topk_class()
        scheme = threshold_algorithm_scheme()
        data, queries = query_class.sample_workload(200, seed=19, query_count=30)
        preprocessed = scheme.preprocess(data, CostTracker())
        for query in queries:
            assert scheme.answer(preprocessed, query, CostTracker()) == (
                query_class.pair_in_language(data, query)
            ), query

    def test_workload_mixes_answers(self):
        query_class = topk_class()
        data, queries = query_class.sample_workload(200, seed=20, query_count=30)
        answers = {query_class.pair_in_language(data, q) for q in queries}
        assert answers == {True, False}

    def test_ta_beats_full_scan_on_decided_queries(self):
        query_class = topk_class()
        scheme = threshold_algorithm_scheme()
        data, _ = query_class.sample_workload(4000, seed=21, query_count=1)
        preprocessed = scheme.preprocess(data, CostTracker())
        # A query decided at the top of the lists.
        easy_true = ((1, 1), 1, 10)
        naive_tracker, ta_tracker = CostTracker(), CostTracker()
        query_class.evaluate(data, easy_true, naive_tracker)
        scheme.answer(preprocessed, easy_true, ta_tracker)
        assert ta_tracker.work * 20 < naive_tracker.work
