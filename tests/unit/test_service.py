"""Unit tests for the serving subsystem: store, cache, engine (ISSUE 1).

The headline regression guard is ``test_concurrent_batches_match_sequential``:
the engine under concurrent mixed batches must return exactly the answers of
sequential execution (and of the naive reference semantics), with one build
per artifact even when many threads miss at once.
"""

from __future__ import annotations

import warnings

import pytest

from repro.catalog import build_query_engine
from repro.core.cost import CostTracker
from repro.core.errors import (
    ArtifactCorruptionError,
    ArtifactVersionError,
    ServiceError,
)
from repro.core.query import PiScheme
from repro.queries import membership_class, sorted_run_scheme
from repro.service.artifacts import FORMAT_VERSION, MAGIC, ArtifactKey, ArtifactStore
from repro.service.cache import LRUArtifactCache
from repro.service.engine import QueryEngine, QueryRequest

MIXED_KINDS = (
    "point-selection",
    "range-selection",
    "list-membership",
    "minimum-range-query",
    "tree-lca",
    "dag-lca",
    "reachability",
    "topk-threshold",
)


def _legacy_request(kind, data, query):
    """A payload-style ``QueryRequest`` with its deprecation silenced.

    The raw-payload form stays supported (these tests pin its behavior)
    but now warns; suppressing here keeps the suite green under
    ``-W error::DeprecationWarning``.  The warning itself is asserted
    once, in ``test_payload_requests_warn_deprecation``.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return QueryRequest(kind, data, query)


def _mixed_batch(engine, *, size=128, seed=11, per_kind=6):
    """Requests across all kinds plus the naive ground-truth answers."""
    requests, expected = [], []
    for kind in MIXED_KINDS:
        query_class, _ = engine.registration(kind)
        data, queries = query_class.sample_workload(size, seed, per_kind)
        for query in queries:
            requests.append(_legacy_request(kind, data, query))
            expected.append(query_class.pair_in_language(data, query))
    return requests, expected


# -- LRU cache ---------------------------------------------------------------


def test_lru_cache_evicts_least_recently_used():
    cache = LRUArtifactCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a"; "b" is now the LRU entry
    cache.put("c", 3)
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    stats = cache.stats()
    assert stats.evictions == 1
    assert stats.hits == 3
    assert stats.misses == 1
    assert 0 < stats.hit_rate < 1


def test_lru_cache_invalidate_and_bounds():
    cache = LRUArtifactCache(capacity=1)
    cache.put("a", 1)
    assert "a" in cache and len(cache) == 1
    assert cache.invalidate("a")
    assert not cache.invalidate("a")
    with pytest.raises(ValueError):
        LRUArtifactCache(capacity=0)


# -- artifact store ----------------------------------------------------------


def _key(params="p|v1"):
    return ArtifactKey(fingerprint="0" * 64, scheme="unit-scheme", params=params)


def test_store_put_get_delete_roundtrip(tmp_path):
    store = ArtifactStore(tmp_path)
    key = _key()
    assert store.get(key) is None
    path = store.put(key, b"payload-bytes")
    assert path.is_file()
    assert store.get(key) == b"payload-bytes"
    assert store.size_bytes() == path.stat().st_size
    assert store.delete(key)
    assert not store.delete(key)
    assert store.get(key) is None


def test_store_rejects_payload_corruption(tmp_path):
    store = ArtifactStore(tmp_path)
    key = _key()
    path = store.put(key, b"sensitive-structure")
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(ArtifactCorruptionError, match="checksum"):
        store.get(key)


def test_store_rejects_bad_magic_and_truncation(tmp_path):
    store = ArtifactStore(tmp_path)
    key = _key()
    path = store.put(key, b"x" * 64)
    original = path.read_bytes()

    path.write_bytes(b"NOTANARTIFACT" + original[13:])
    with pytest.raises(ArtifactCorruptionError, match="magic"):
        store.get(key)

    path.write_bytes(original[: len(MAGIC) + 3])
    with pytest.raises(ArtifactCorruptionError, match="truncated"):
        store.get(key)


def test_store_rejects_version_mismatch(tmp_path):
    store = ArtifactStore(tmp_path)
    key = _key()
    path = store.put(key, b"payload")
    blob = bytearray(path.read_bytes())
    # The two bytes after the magic are the big-endian format version.
    blob[len(MAGIC) : len(MAGIC) + 2] = (FORMAT_VERSION + 1).to_bytes(2, "big")
    path.write_bytes(bytes(blob))
    with pytest.raises(ArtifactVersionError):
        store.get(key)


def test_store_rejects_key_mismatch(tmp_path):
    store = ArtifactStore(tmp_path)
    key = _key()
    other = ArtifactKey(fingerprint="f" * 64, scheme="unit-scheme", params="p|v1")
    path = store.put(key, b"payload")
    hijacked = path.parent / other.filename()
    path.rename(hijacked)
    with pytest.raises(ArtifactCorruptionError, match="fingerprint"):
        store.get(other)


def test_scheme_artifact_version_changes_artifact_identity():
    engine = QueryEngine()
    engine.register("m1", membership_class(), sorted_run_scheme())
    bumped = sorted_run_scheme()
    bumped.artifact_version = 2
    engine.register("m2", membership_class(), bumped)
    data = (3, 1, 2)
    assert engine.artifact_key("m1", data) != engine.artifact_key("m2", data)
    assert engine.artifact_key("m1", data).fingerprint == engine.artifact_key("m2", data).fingerprint


# -- query engine ------------------------------------------------------------


def test_curated_surface_exports_resolve():
    """Every name in the curated ``repro.service.__all__`` resolves --
    including the lazily re-exported catalog factory -- and unknown
    attributes still raise AttributeError."""
    import repro.service as service

    for name in service.__all__:
        assert getattr(service, name) is not None, name
    from repro.catalog import build_query_engine as factory

    assert service.build_query_engine is factory
    assert issubclass(service.WorkloadError, service.ReproError)
    with pytest.raises(AttributeError, match="no attribute"):
        service.definitely_not_exported


def test_payload_requests_warn_deprecation():
    """Raw-payload requests emit the migration warning; named sessions and
    query-only requests stay warning-clean."""
    with pytest.warns(DeprecationWarning, match="attach the dataset once"):
        request = QueryRequest("list-membership", (3, 1, 4), 3)
    with build_query_engine() as engine:
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            # Named-session addressing: the supported, warning-free form.
            engine.attach("digits", (3, 1, 4), kinds=["list-membership"])
            named = QueryRequest("list-membership", dataset="digits", query=3)
            assert engine.execute(named) is True
        # Deprecated does not mean broken: behavior is unchanged.
        assert engine.execute(request) is True


def test_unknown_kind_raises_service_error():
    engine = QueryEngine()
    with pytest.raises(ServiceError, match="no scheme registered"):
        engine.execute(_legacy_request("nope", (1, 2), 1))
    with pytest.raises(ServiceError, match="already registered"):
        engine.register("m", membership_class(), sorted_run_scheme())
        engine.register("m", membership_class(), sorted_run_scheme())


def test_concurrent_batches_match_sequential(tmp_path):
    """Thread-safety regression guard (ISSUE 1 satellite): concurrent mixed
    batches return the same answers as sequential execution, starting cold so
    concurrent misses race on the build path."""
    store = ArtifactStore(tmp_path)
    with build_query_engine(store=store, max_workers=8) as engine:
        requests, expected = _mixed_batch(engine)
        concurrent = engine.execute_batch(requests)  # cold: builds race
        sequential = engine.execute_batch(requests, concurrent=False)
        assert concurrent == sequential == expected
        stats = engine.stats()
        # One build per (kind, dataset) pair despite the concurrent misses.
        for kind in MIXED_KINDS:
            assert stats.per_kind[kind].builds == 1
            assert stats.per_kind[kind].queries == 2 * len(requests) // len(MIXED_KINDS)
        assert stats.total_queries() == 2 * len(requests)


def test_second_engine_serves_from_store_without_builds(tmp_path):
    store = ArtifactStore(tmp_path)
    with build_query_engine(store=store) as first:
        requests, expected = _mixed_batch(first, size=96, seed=5)
        assert first.execute_batch(requests) == expected

    with build_query_engine(store=store) as second:
        assert second.execute_batch(requests) == expected
        stats = second.stats()
        assert sum(s.builds for s in stats.per_kind.values()) == 0
        assert sum(s.store_hits for s in stats.per_kind.values()) == len(MIXED_KINDS)


def test_engine_recovers_from_corrupt_artifact(tmp_path):
    store = ArtifactStore(tmp_path)
    data = tuple(range(64))
    with QueryEngine(store=store) as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        key = engine.warm("membership", data)
        path = store._path(key)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(bytes(blob))

    with QueryEngine(store=store) as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        assert engine.execute(_legacy_request("membership", data, 63)) is True
        assert engine.execute(_legacy_request("membership", data, 64)) is False
        stats = engine.stats().per_kind["membership"]
        assert stats.builds == 1  # corrupt artifact dropped, rebuilt, re-persisted
        assert store.get(key) is not None  # healthy artifact re-written


def test_non_serializable_scheme_is_memory_cached_only(tmp_path):
    store = ArtifactStore(tmp_path)
    builds = []

    def preprocess(data, tracker):
        builds.append(1)
        return set(data)

    scheme = PiScheme(
        name="opaque-set",
        preprocess=preprocess,
        evaluate=lambda structure, query, tracker: query in structure,
    )
    assert not scheme.serializable
    with QueryEngine(store=store) as engine:
        engine.register("opaque", membership_class(), scheme)
        data = (1, 2, 3)
        assert engine.execute(_legacy_request("opaque", data, 2)) is True
        assert engine.execute(_legacy_request("opaque", data, 9)) is False
        assert len(builds) == 1  # memory cache reused; nothing hit the disk
        assert list(store.keys()) == []


def test_engine_closed_rejects_work():
    engine = QueryEngine()
    engine.register("membership", membership_class(), sorted_run_scheme())
    engine.close()
    with pytest.raises(ServiceError, match="closed"):
        engine.execute(_legacy_request("membership", (1,), 1))


def test_fingerprint_memo_is_content_based():
    engine = QueryEngine()
    engine.register("membership", membership_class(), sorted_run_scheme())
    left = engine.artifact_key("membership", (1, 2, 3))
    right = engine.artifact_key("membership", tuple([1, 2, 3]))  # distinct object
    assert left == right
    assert left != engine.artifact_key("membership", (1, 2, 4))


def test_invalidate_after_in_place_mutation():
    engine = QueryEngine()
    engine.register("membership", membership_class(), sorted_run_scheme())
    data = [1, 2, 3]
    assert engine.execute(_legacy_request("membership", data, 4)) is False
    data.append(4)
    engine.invalidate(data)  # the documented contract for in-place mutation
    assert engine.execute(_legacy_request("membership", data, 4)) is True
    engine.invalidate(object())  # unknown objects are a no-op
    assert engine.stats().per_kind["membership"].builds == 2


def test_cache_stats_count_one_miss_per_cold_resolve(tmp_path):
    with QueryEngine(store=ArtifactStore(tmp_path)) as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        data = (1, 2, 3)
        engine.execute(_legacy_request("membership", data, 1))  # cold: one miss
        engine.execute(_legacy_request("membership", data, 2))  # warm: one hit
        cache = engine.stats().cache
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == pytest.approx(0.5)


def test_stats_reset_keeps_registrations():
    engine = QueryEngine()
    engine.register("membership", membership_class(), sorted_run_scheme())
    engine.execute(_legacy_request("membership", (5, 6), 5))
    assert engine.stats().per_kind["membership"].queries == 1
    engine.reset_stats()
    stats = engine.stats().per_kind["membership"]
    assert stats.queries == 0 and stats.scheme == "sort+binary-search"


def test_build_time_and_serve_time_are_separated(tmp_path):
    with QueryEngine(store=ArtifactStore(tmp_path)) as engine:
        engine.register("membership", membership_class(), sorted_run_scheme())
        data = tuple(range(4096))
        for element in (0, 17, 4096, 5000):
            engine.execute(_legacy_request("membership", data, element))
        stats = engine.stats().per_kind["membership"]
        assert stats.builds == 1
        assert stats.queries == 4
        assert stats.build_seconds > 0
        assert stats.serve_seconds > 0
        assert stats.hit_rate == pytest.approx(3 / 4)


# -- close() lifecycle (ISSUE 9, satellite a) ----------------------------------


def test_close_is_idempotent_and_reentrant():
    engine = QueryEngine()
    engine.register("membership", membership_class(), sorted_run_scheme())
    ds = engine.attach("d", (1, 2, 3), kinds=["membership"])
    assert ds.query("membership", 2)
    engine.close()
    engine.close()  # second close: a no-op, not a double-teardown
    with pytest.raises(ServiceError, match="closed"):
        engine.execute(_legacy_request("membership", (1,), 1))


def test_concurrent_closes_race_to_one_teardown():
    import threading

    engine = QueryEngine()
    engine.register("membership", membership_class(), sorted_run_scheme())
    engine.attach("d", tuple(range(64)), kinds=["membership"])
    barrier = threading.Barrier(4)
    failures = []

    def closer():
        barrier.wait()
        try:
            engine.close()
        except BaseException as exc:  # pragma: no cover - the regression
            failures.append(exc)

    threads = [threading.Thread(target=closer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures


def test_pending_submits_resolve_with_service_error_on_close():
    """Futures still queued when close() lands never hang and never return
    a fabricated answer: the pool drains them into UnknownDatasetError
    (close detaches the session before the queued query runs)."""
    import threading

    release = threading.Event()
    started = threading.Event()

    def preprocess(data, tracker):
        return set(data)

    def evaluate(structure, query, tracker):
        started.set()
        release.wait(10)
        return query in structure

    engine = QueryEngine(max_workers=1)
    engine.register(
        "slow-membership",
        membership_class(),
        PiScheme(name="slow-set", preprocess=preprocess, evaluate=evaluate),
    )
    ds = engine.attach("d", (1, 2, 3), kinds=["slow-membership"])
    blocker = ds.submit("slow-membership", 1)  # occupies the only worker
    assert started.wait(10)
    queued = [ds.submit("slow-membership", q) for q in (2, 3, 9)]

    closer = threading.Thread(target=engine.close)
    closer.start()
    release.set()
    closer.join(timeout=30)
    assert not closer.is_alive()

    assert blocker.result(timeout=10) is True  # already running: completes
    for future in queued:
        with pytest.raises(ServiceError):
            future.result(timeout=10)
    # And submitting after close is an explicit error, not a pool crash.
    with pytest.raises(ServiceError):
        ds.submit("slow-membership", 1)
