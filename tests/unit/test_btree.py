"""Unit tests for the B+-tree (repro.indexes.btree)."""

import random

import pytest

from repro.core.cost import CostTracker
from repro.core.errors import IndexError_
from repro.indexes.btree import BPlusTree


class TestBasics:
    def test_rejects_tiny_order(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=3)

    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert not tree.contains(5)
        assert tree.search(5) == []
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_single_insert(self):
        tree = BPlusTree()
        tree.insert(10, "a")
        assert tree.contains(10)
        assert tree.search(10) == ["a"]
        assert len(tree) == 1

    def test_duplicate_keys_accumulate_payloads(self):
        tree = BPlusTree()
        tree.insert(7, "x")
        tree.insert(7, "y")
        assert sorted(tree.search(7)) == ["x", "y"]
        assert len(tree) == 2
        tree.check_invariants()

    def test_build_classmethod(self):
        tree = BPlusTree.build([(i, i * 10) for i in range(100)], order=8)
        assert len(tree) == 100
        assert tree.search(42) == [420]
        tree.check_invariants()


class TestOrderedBehaviour:
    def test_items_sorted(self):
        rng = random.Random(1)
        keys = [rng.randrange(1000) for _ in range(500)]
        tree = BPlusTree.build([(k, None) for k in keys], order=6)
        assert tree.keys() == sorted(keys)

    def test_range_iter(self):
        tree = BPlusTree.build([(i, str(i)) for i in range(0, 100, 3)], order=5)
        got = [k for k, _ in tree.range_iter(10, 40)]
        assert got == [k for k in range(0, 100, 3) if 10 <= k <= 40]

    def test_range_iter_empty_window(self):
        tree = BPlusTree.build([(i * 10, None) for i in range(10)], order=5)
        assert list(tree.range_iter(41, 49)) == []

    def test_range_nonempty(self):
        tree = BPlusTree.build([(i * 10, None) for i in range(10)], order=5)
        assert tree.range_nonempty(35, 50)
        assert not tree.range_nonempty(41, 49)
        assert tree.range_nonempty(0, 0)
        assert not tree.range_nonempty(91, 200)

    def test_range_nonempty_past_leaf_end(self):
        # low larger than every key in its leaf but a later leaf qualifies.
        tree = BPlusTree.build([(i, None) for i in range(64)], order=4)
        assert tree.range_nonempty(62.5, 70)
        assert not tree.range_nonempty(63.5, 70)


class TestDeletion:
    def test_delete_missing_returns_false(self):
        tree = BPlusTree.build([(1, "a")])
        assert not tree.delete(2)
        assert not tree.delete(1, payload="zzz")
        assert len(tree) == 1

    def test_delete_specific_payload(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.delete(5, payload="a")
        assert tree.search(5) == ["b"]

    def test_delete_everything_random_order(self):
        rng = random.Random(2)
        keys = list(range(300))
        rng.shuffle(keys)
        tree = BPlusTree.build([(k, k) for k in keys], order=6)
        rng.shuffle(keys)
        for key in keys:
            assert tree.delete(key), key
            tree.check_invariants()
        assert len(tree) == 0

    def test_interleaved_inserts_and_deletes(self):
        rng = random.Random(3)
        tree = BPlusTree(order=5)
        model = {}
        for step in range(2000):
            key = rng.randrange(120)
            if rng.random() < 0.55:
                tree.insert(key, step)
                model.setdefault(key, []).append(step)
            else:
                expected = bool(model.get(key))
                assert tree.delete(key) == expected
                if expected:
                    model[key].pop()
            if step % 200 == 0:
                tree.check_invariants()
        for key in range(120):
            assert sorted(tree.search(key)) == sorted(model.get(key, []))


class TestCostShape:
    def test_probe_cost_logarithmic(self):
        costs = {}
        for exponent in (8, 12, 16):
            n = 2**exponent
            tree = BPlusTree.build([(i, None) for i in range(n)], order=32)
            tracker = CostTracker()
            tree.contains(n // 2, tracker)
            costs[exponent] = tracker.depth
        # Doubling the exponent should roughly double the probe cost,
        # nowhere near the 256x of a scan.
        assert costs[16] <= 3 * costs[8]

    def test_height_grows_slowly(self):
        tree = BPlusTree.build([(i, None) for i in range(10_000)], order=32)
        assert tree.height <= 4
