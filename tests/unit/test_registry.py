"""Unit tests for the Figure 2 registry machinery (repro.core.classes)."""

import pytest

from repro.core import Membership, Registry, RegistryEntry, figure2_report
from repro.core.errors import ReproError


def entry(name: str, claims: set, **kwargs) -> RegistryEntry:
    return RegistryEntry(name=name, claims=claims, **kwargs)


class TestRegistry:
    def test_add_and_get(self):
        registry = Registry()
        added = registry.add(entry("x", {Membership.P}))
        assert registry.get("x") is added
        assert "x" in registry
        assert "y" not in registry

    def test_duplicate_rejected(self):
        registry = Registry()
        registry.add(entry("x", {Membership.P}))
        with pytest.raises(ReproError):
            registry.add(entry("x", {Membership.P}))

    def test_missing_raises(self):
        with pytest.raises(ReproError):
            Registry().get("nope")

    def test_with_claim(self):
        registry = Registry()
        registry.add(entry("a", {Membership.P, Membership.PI_TQ}))
        registry.add(entry("b", {Membership.NP_COMPLETE}))
        assert [e.name for e in registry.with_claim(Membership.P)] == ["a"]


class TestContainments:
    def test_nc_requires_pit0q_and_p(self):
        registry = Registry()
        registry.add(entry("bad", {Membership.NC}))
        violations = registry.check_containments()
        assert any("NC but not PiT0Q" in v for v in violations)
        assert any("NC but not P" in v for v in violations)

    def test_pit0q_requires_p(self):
        registry = Registry()
        registry.add(entry("bad", {Membership.PI_T0Q, Membership.PI_TQ}))
        violations = registry.check_containments()
        assert any("PiT0Q but not P" in v for v in violations)

    def test_p_requires_made_tractable(self):
        # Corollary 6: PiTP = P, so a P entry must claim PiTP or PiTQ.
        registry = Registry()
        registry.add(entry("bad", {Membership.P}))
        violations = registry.check_containments()
        assert any("Corollary 6" in v for v in violations)

    def test_np_complete_plus_tractable_contradicts_corollary_7(self):
        registry = Registry()
        registry.add(
            entry("bad", {Membership.NP_COMPLETE, Membership.PI_TP})
        )
        violations = registry.check_containments()
        assert any("Corollary 7" in v for v in violations)

    def test_clean_registry_has_no_violations(self):
        registry = Registry()
        registry.add(
            entry(
                "good",
                {Membership.P, Membership.PI_T0Q, Membership.PI_TQ},
            )
        )
        registry.add(entry("hard", {Membership.NP_COMPLETE}))
        assert registry.check_containments() == []

    def test_report_renders(self):
        registry = Registry()
        registry.add(
            entry("good", {Membership.P, Membership.PI_T0Q, Membership.PI_TQ})
        )
        report = figure2_report(registry)
        assert "good" in report
        assert "uncertified" in report  # PiT0Q claimed, not measured
