"""Unit tests for the Sigma* codec (repro.core.alphabet)."""

import pytest

from repro.core import alphabet
from repro.core.errors import EncodingError


class TestEncodeDecode:
    def test_none_roundtrip(self):
        assert alphabet.decode(alphabet.encode(None)) is None

    def test_bool_roundtrip(self):
        assert alphabet.decode(alphabet.encode(True)) is True
        assert alphabet.decode(alphabet.encode(False)) is False

    def test_bool_is_not_int(self):
        # bool subclasses int; the codec must keep them distinct.
        assert alphabet.decode(alphabet.encode(1)) == 1
        assert alphabet.decode(alphabet.encode(1)) is not True
        assert isinstance(alphabet.decode(alphabet.encode(True)), bool)

    def test_int_roundtrip(self):
        for value in (0, 1, -1, 42, -9999999999999, 2**80):
            assert alphabet.decode(alphabet.encode(value)) == value

    def test_str_roundtrip(self):
        for value in ("", "hello", "with;semicolon", "with#hash", "100%@x", "a:b"):
            assert alphabet.decode(alphabet.encode(value)) == value

    def test_nested_sequences(self):
        value = (1, ("two", (True, None)), (), (-3, "x#y"))
        assert alphabet.decode(alphabet.encode(value)) == value

    def test_lists_decode_as_tuples(self):
        assert alphabet.decode(alphabet.encode([1, [2, 3]])) == (1, (2, 3))

    def test_encoding_is_deterministic(self):
        value = (1, "a", (None, False))
        assert alphabet.encode(value) == alphabet.encode(value)

    def test_unsupported_type_raises(self):
        with pytest.raises(EncodingError):
            alphabet.encode(object())
        with pytest.raises(EncodingError):
            alphabet.encode(3.14)


class TestDelimiters:
    def test_encoded_strings_never_contain_hash(self):
        tricky = ("a#b", ("##", -1), "#")
        assert alphabet.PAIR_DELIMITER not in alphabet.encode(tricky)

    def test_encoded_strings_never_contain_at(self):
        assert alphabet.PADDING_DELIMITER not in alphabet.encode(("a@b", "@@"))

    def test_pair_roundtrip(self):
        data, query = ("D", (1, 2)), ("Q", "a#b")
        text = alphabet.encode_pair(data, query)
        assert text.count(alphabet.PAIR_DELIMITER) == 1
        assert alphabet.decode_pair(text) == (data, query)

    def test_pair_without_delimiter_raises(self):
        with pytest.raises(EncodingError):
            alphabet.decode_pair(alphabet.encode("lonely"))


class TestMalformedInput:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "x;",
            "i;",
            "iabc;",
            "b2;",
            "n",
            "l2:i1;",  # declared two children, provided one
            "i1;i2;",  # trailing data
            "l-1:",
            "sunterminated",
        ],
    )
    def test_decode_rejects_garbage(self, text):
        with pytest.raises(EncodingError):
            alphabet.decode(text)

    def test_encoded_size_matches_length(self):
        value = (1, "abc", None)
        assert alphabet.encoded_size(value) == len(alphabet.encode(value))
