"""Unit tests for factorizations and languages of pairs (Section 3)."""

import random

import pytest

from repro.core import (
    EMPTY_DATA,
    CostTracker,
    canonical_factorization,
    decision_problem_of,
    identity_factorization,
    pair_language_of,
    trivial_factorization,
)
from repro.core.errors import FactorizationError
from repro.queries.bds import bds_problem, upsilon_bds, upsilon_prime
from repro.queries.membership import (
    membership_class,
    membership_factorization,
    membership_problem,
)


class TestRoundTripLaw:
    def test_membership_factorization(self):
        problem = membership_problem()
        factorization = membership_factorization()
        instances = problem.sample_instances(64, seed=1, count=10)
        factorization.check_round_trips(instances)

    def test_bds_factorizations(self):
        problem = bds_problem()
        instances = problem.sample_instances(32, seed=2, count=5)
        upsilon_bds().check_round_trips(instances)
        upsilon_prime().check_round_trips(instances)

    def test_violation_detected(self):
        broken = trivial_factorization()
        # Force a violation by mangling rho.
        broken.rho = lambda data, query: ("mangled", query)
        with pytest.raises(FactorizationError):
            broken.check_round_trip(("x", "y"))


class TestStockFactorizations:
    def test_trivial_puts_everything_in_query(self):
        factorization = trivial_factorization()
        data, query = factorization.split(("G", (1, 2)))
        assert data == EMPTY_DATA
        assert query == ("G", (1, 2))
        assert factorization.rho(data, query) == ("G", (1, 2))

    def test_identity_duplicates(self):
        factorization = identity_factorization()
        data, query = factorization.split("whole")
        assert data == query == "whole"
        assert factorization.rho("whole", "whole") == "whole"
        with pytest.raises(FactorizationError):
            factorization.rho("a", "b")

    def test_canonical_splits_pairs(self):
        factorization = canonical_factorization()
        assert factorization.split(("D", "Q")) == ("D", "Q")
        assert factorization.rho("D", "Q") == ("D", "Q")


class TestPairLanguages:
    def test_proposition_1_membership(self):
        # x in L iff <pi1(x), pi2(x)> in S(L, Upsilon)  (Proposition 1).
        problem = membership_problem()
        language = membership_factorization().pair_language(problem)
        for instance in problem.sample_instances(64, seed=3, count=20):
            data, query = instance
            assert language.member(data, query) == problem.member(instance)

    def test_pair_language_of_query_class(self):
        query_class = membership_class()
        language = pair_language_of(query_class)
        data = (5, 7, 9)
        assert language.member(data, 7)
        assert not language.member(data, 8)

    def test_encoded_pair_has_single_delimiter(self):
        language = pair_language_of(membership_class())
        text = language.encoded_pair((1, 2), 1)
        assert text.count("#") == 1


class TestDecisionProblemOf:
    def test_membership_round_trip_through_encoding(self):
        problem = decision_problem_of(membership_class())
        instance = problem.generate(32, random.Random(4))
        encoded = problem.encode_instance(instance)
        assert problem.decode_instance(encoded) == instance

    def test_membership_agrees_with_query_class(self):
        query_class = membership_class()
        problem = decision_problem_of(query_class)
        rng = random.Random(5)
        for _ in range(20):
            instance = problem.generate(48, rng)
            data, query = instance
            tracker = CostTracker()
            assert problem.member(instance, tracker) == query_class.pair_in_language(
                data, query
            )

    def test_instance_size_is_encoded_length(self):
        problem = decision_problem_of(membership_class())
        instance = problem.generate(16, random.Random(6))
        assert problem.instance_size(instance) == len(problem.encode_instance(instance))
