"""Unit tests for bounded incremental evaluation (Section 4(7))."""

import random

import pytest

from repro.core.cost import CostTracker
from repro.core.errors import GraphError
from repro.incremental import (
    ChangeKind,
    ChangeLog,
    IncrementalSelectionIndex,
    IncrementalTransitiveClosure,
    TupleChange,
)
from repro.storage.relation import uniform_int_relation


class TestChangeLog:
    def test_changed_is_sum(self):
        log = ChangeLog()
        log.record(2, 5, "a")
        log.record(1, 0)
        assert log.input_changes == 3
        assert log.output_changes == 5
        assert log.changed == 8
        assert log.details == ["a"]


class TestIncrementalSelection:
    @pytest.fixture
    def index(self):
        relation = uniform_int_relation(400, random.Random(70), value_range=(0, 150))
        return IncrementalSelectionIndex(relation, "a")

    def test_insert_visible(self, index):
        assert not index.point_nonempty(9999)
        index.apply(TupleChange(ChangeKind.INSERT, (9999, 1)))
        assert index.point_nonempty(9999)
        assert index.range_nonempty(9990, 10000)

    def test_delete_removes(self, index):
        index.apply(TupleChange(ChangeKind.INSERT, (7777, 2)))
        index.apply(TupleChange(ChangeKind.DELETE, (7777, 2)))
        assert not index.point_nonempty(7777)

    def test_delete_of_absent_row_is_noop(self, index):
        before = len(index.relation)
        index.apply(TupleChange(ChangeKind.DELETE, (123456, 0)))
        assert len(index.relation) == before

    def test_log_counts_output_changes(self, index):
        index.apply(TupleChange(ChangeKind.INSERT, (50000, 1)))  # new key: dO=1
        index.apply(TupleChange(ChangeKind.INSERT, (50000, 2)))  # same key: dO=0
        assert index.log.input_changes == 2
        assert index.log.output_changes == 1

    def test_batch_cost_bounded_by_changes_not_data(self, index):
        tracker = CostTracker()
        changes = [
            TupleChange(ChangeKind.INSERT, (100000 + i, 0)) for i in range(10)
        ]
        batch_cost = index.apply_batch(changes, tracker)
        rebuild = IncrementalSelectionIndex.rebuild_cost(index.relation, "a")
        # Ten O(log n) updates must be far cheaper than one full rebuild.
        assert batch_cost.work * 10 < rebuild.work

    def test_queries_stay_correct_under_update_stream(self):
        rng = random.Random(71)
        relation = uniform_int_relation(100, rng, value_range=(0, 60))
        index = IncrementalSelectionIndex(relation, "a")
        model = {}
        for row in relation.rows():
            model[row[0]] = model.get(row[0], 0) + 1
        for step in range(400):
            key = rng.randrange(70)
            if rng.random() < 0.6:
                index.apply(TupleChange(ChangeKind.INSERT, (key, step)))
                model[key] = model.get(key, 0) + 1
            else:
                row = next(
                    (r for r in index.relation.rows() if r[0] == key), None
                )
                if row is not None:
                    index.apply(TupleChange(ChangeKind.DELETE, row))
                    model[key] -= 1
            probe = rng.randrange(70)
            assert index.point_nonempty(probe) == bool(model.get(probe))


class TestIncrementalClosure:
    def test_basic_propagation(self):
        closure = IncrementalTransitiveClosure(4)
        closure.insert_edge(0, 1)
        closure.insert_edge(1, 2)
        assert closure.reachable(0, 2)
        assert not closure.reachable(2, 0)
        closure.insert_edge(2, 3)
        assert closure.reachable(0, 3)

    def test_redundant_edge_is_cheap(self):
        closure = IncrementalTransitiveClosure(64)
        closure.insert_edge(0, 1)
        cost = closure.insert_edge(0, 1)
        assert cost.work <= 3

    def test_cycle_insertion(self):
        closure = IncrementalTransitiveClosure(3)
        closure.insert_edge(0, 1)
        closure.insert_edge(1, 2)
        closure.insert_edge(2, 0)
        for u in range(3):
            for v in range(3):
                assert closure.reachable(u, v)

    def test_agrees_with_recompute_on_random_streams(self):
        rng = random.Random(72)
        for _ in range(5):
            closure = IncrementalTransitiveClosure(25)
            for _ in range(60):
                u, v = rng.randrange(25), rng.randrange(25)
                if u != v:
                    closure.insert_edge(u, v)
            assert closure.agrees_with_recompute()

    def test_incremental_cost_tracks_changed_pairs(self):
        rng = random.Random(73)
        closure = IncrementalTransitiveClosure(120)
        for _ in range(300):
            u, v = rng.randrange(120), rng.randrange(120)
            if u == v:
                continue
            log_before = closure.log.changed
            cost = closure.insert_edge(u, v)
            delta = closure.log.changed - log_before
            # Work proportional to |CHANGED| for this edge (constant factor).
            assert cost.work <= 16 * delta + 16

    def test_vertex_bounds_checked(self):
        closure = IncrementalTransitiveClosure(2)
        with pytest.raises(GraphError):
            closure.insert_edge(0, 5)
        with pytest.raises(GraphError):
            closure.reachable(5, 0)
