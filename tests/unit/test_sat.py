"""Unit tests for 3SAT and the 3SAT -> VC reduction (Corollary 7 support)."""

import itertools
import random

import pytest

from repro.core import CostTracker
from repro.kernelization import vc_brute_force, vc_decide
from repro.queries.sat import (
    Formula,
    sat_decide,
    three_sat_problem,
    three_sat_to_vertex_cover,
)


def brute_force_sat(formula: Formula) -> bool:
    for bits in itertools.product([False, True], repeat=formula.n_variables):
        if formula.evaluate(bits):
            return True
    return False


def random_formula(rng: random.Random, max_vars: int = 6, max_clauses: int = 14) -> Formula:
    n = rng.randint(3, max_vars)
    m = rng.randint(1, max_clauses)
    clauses = []
    for _ in range(m):
        variables = rng.sample(range(n), 3)
        clauses.append(tuple((v, rng.random() < 0.5) for v in variables))
    return Formula(n, clauses)


class TestFormula:
    def test_evaluate(self):
        # (x0 or x1 or x2) and (not x0 or not x1 or x2)
        formula = Formula(
            3,
            [
                ((0, True), (1, True), (2, True)),
                ((0, False), (1, False), (2, True)),
            ],
        )
        assert formula.evaluate([True, False, False])
        assert not formula.evaluate([False, False, False]) or True  # first clause fails
        assert formula.evaluate([True, True, True])
        assert not formula.evaluate((False, False, False))

    def test_validation(self):
        with pytest.raises(ValueError):
            Formula(2, [((0, True), (1, True))])  # not 3 literals
        with pytest.raises(ValueError):
            Formula(1, [((0, True), (1, True), (0, False))])  # var out of range


class TestDecider:
    def test_trivially_satisfiable(self):
        formula = Formula(3, [((0, True), (1, True), (2, True))])
        assert sat_decide(formula)

    def test_unsatisfiable_core(self):
        # All 8 polarity combinations over 3 variables: unsatisfiable.
        clauses = [
            tuple((v, bool(bits >> v & 1)) for v in range(3))
            for bits in range(8)
        ]
        assert not sat_decide(Formula(3, clauses))

    def test_matches_brute_force_on_random_formulas(self):
        rng = random.Random(300)
        for _ in range(120):
            formula = random_formula(rng)
            assert sat_decide(formula) == brute_force_sat(formula)

    def test_problem_generator_mixes_answers(self):
        problem = three_sat_problem()
        answers = {
            problem.member(instance)
            for instance in problem.sample_instances(64, seed=3, count=25)
        }
        assert answers == {True, False}

    def test_encoding_roundtrip_size(self):
        problem = three_sat_problem()
        instance = problem.sample_instances(48, seed=4, count=1)[0]
        assert problem.instance_size(instance) > 0


class TestSatToVertexCover:
    def test_structure(self):
        formula = Formula(3, [((0, True), (1, False), (2, True))])
        instance = three_sat_to_vertex_cover(formula)
        # 2 vertices per variable + 3 per clause; K = n + 2m.
        assert instance.graph.n == 2 * 3 + 3 * 1
        assert instance.k == 3 + 2
        # variable edges + 3 triangle edges + 3 wires
        assert instance.graph.edge_count == 3 + 3 + 3

    def test_reduction_preserves_answers(self):
        rng = random.Random(301)
        for _ in range(60):
            formula = random_formula(rng, max_vars=4, max_clauses=5)
            expected = brute_force_sat(formula)
            instance = three_sat_to_vertex_cover(formula)
            assert vc_decide(instance) == expected, formula.clauses

    def test_reduction_agrees_with_vc_brute_force_on_tiny_instances(self):
        rng = random.Random(302)
        for _ in range(15):
            formula = random_formula(rng, max_vars=3, max_clauses=3)
            instance = three_sat_to_vertex_cover(formula)
            assert vc_brute_force(instance) == brute_force_sat(formula)

    def test_cover_size_is_tight(self):
        # The bound n + 2m is exact: K - 1 never suffices for a satisfiable
        # formula with at least one clause (each triangle needs 2, each
        # variable edge needs 1).
        formula = Formula(3, [((0, True), (1, True), (2, True))])
        instance = three_sat_to_vertex_cover(formula)
        assert vc_decide(instance)
        smaller = type(instance)(instance.graph, instance.k - 1)
        assert not vc_decide(smaller)
