"""Unit tests for the workload harness (ISSUE 6): distributions, specs,
templates, drivers, and the ``Dataset.stats()`` counter surface.

The load-bearing guarantees:

* distributions produce the skew they claim (Zipf rank frequencies,
  hotspot working-set coverage, drift window movement);
* a spec binds with hard validation errors, and a bound driver run is
  deterministic under a fixed seed -- same spec, same dataset, same
  per-worker operation sequences, independent of thread scheduling;
* writes are routed through ``Dataset.apply_changes`` and show up in the
  session version and the report's counter window;
* ``Dataset.stats()`` / ``stats_snapshot()`` are plain JSON-serializable
  dicts (the supported read surface -- no reaching into engine internals).
"""

from __future__ import annotations

import json
import random
from collections import Counter

import pytest

from repro.catalog import build_query_engine
from repro.core.errors import WorkloadError
from repro.workloads import (
    DriftKeys,
    HotspotKeys,
    UniformKeys,
    WorkloadSpec,
    ZipfKeys,
    run_closed_loop,
    run_open_loop,
)

SEED = 20130826


# -- distributions -----------------------------------------------------------


def _draw(sampler, count, seed=SEED):
    rng = random.Random(seed)
    return [sampler.sample(rng) for _ in range(count)]


def test_zipf_rank_frequencies_match_skew():
    """Empirical head frequencies track the 1/rank^skew law within
    tolerance, and the ranks come out in popularity order."""
    universe, skew, draws = 512, 1.1, 40_000
    counts = Counter(_draw(ZipfKeys(skew).start(universe), draws))
    total_weight = sum(1.0 / (rank**skew) for rank in range(1, universe + 1))
    for rank in range(5):
        expected = (1.0 / ((rank + 1) ** skew)) / total_weight
        observed = counts[rank] / draws
        assert abs(observed - expected) < 0.2 * expected, (rank, observed, expected)
    head = [counts[rank] for rank in range(5)]
    assert head == sorted(head, reverse=True)


def test_zipf_skew_concentrates_the_head():
    universe, draws = 512, 20_000
    mild = Counter(_draw(ZipfKeys(0.8).start(universe), draws))
    steep = Counter(_draw(ZipfKeys(1.6).start(universe), draws))
    head = range(universe // 50)
    assert sum(steep[i] for i in head) > sum(mild[i] for i in head)


def test_hotspot_working_set_coverage():
    universe = 1000
    sampler = HotspotKeys(hot_fraction=0.1, hot_weight=0.9).start(universe)
    samples = _draw(sampler, 20_000)
    hot = sum(1 for index in samples if index < 100) / len(samples)
    assert abs(hot - 0.9) < 0.02
    assert any(index >= 100 for index in samples)  # the cold tail is reachable


def test_drift_window_slides_across_the_universe():
    universe, period = 1000, 50
    sampler = DriftKeys(window=0.1, period=period).start(universe)
    first = set(_draw(sampler, period, seed=1))
    second = set(_draw(sampler, period, seed=2))
    assert max(first) < 100  # initial window [0, 100)
    assert min(second) >= 100 and max(second) < 200  # advanced by its width
    assert not first & second


def test_uniform_covers_the_universe():
    samples = _draw(UniformKeys().start(8), 2_000)
    assert set(samples) == set(range(8))


def test_distribution_parameter_validation():
    with pytest.raises(WorkloadError):
        ZipfKeys(0.0)
    with pytest.raises(WorkloadError):
        HotspotKeys(hot_fraction=0.0)
    with pytest.raises(WorkloadError):
        HotspotKeys(hot_weight=1.5)
    with pytest.raises(WorkloadError):
        DriftKeys(window=0.0)
    with pytest.raises(WorkloadError):
        DriftKeys(period=0)
    with pytest.raises(WorkloadError):
        UniformKeys().start(0)


# -- spec validation ---------------------------------------------------------


def test_spec_rejects_malformed_mixes():
    with pytest.raises(WorkloadError, match="mix is empty"):
        WorkloadSpec(mix={})
    with pytest.raises(WorkloadError, match="must be > 0"):
        WorkloadSpec(mix={"list-membership": 0})
    with pytest.raises(WorkloadError, match="write_ratio"):
        WorkloadSpec(mix={"list-membership": 1.0}, write_ratio=1.0)
    with pytest.raises(WorkloadError, match="hit_fraction"):
        WorkloadSpec(mix={"list-membership": 1.0}, hit_fraction=2.0)
    with pytest.raises(WorkloadError, match="writes_per_batch"):
        WorkloadSpec(mix={"list-membership": 1.0}, writes_per_batch=0)


def test_bind_rejects_unserved_kinds_and_immutable_writes():
    with build_query_engine() as engine:
        ds = engine.attach("events", (1, 2, 3), kinds=["list-membership"])
        with pytest.raises(WorkloadError, match="not served"):
            WorkloadSpec(mix={"reachability": 1.0}).bind(ds)
        with pytest.raises(WorkloadError, match="mutable"):
            WorkloadSpec(mix={"list-membership": 1.0}, write_ratio=0.1).bind(ds)


def test_spec_provenance_is_json_serializable():
    spec = WorkloadSpec(
        mix={"list-membership": 2.0},
        write_ratio=0.1,
        distribution=ZipfKeys(1.3),
        seed=7,
    )
    provenance = json.loads(json.dumps(spec.provenance()))
    assert provenance["distribution"] == "zipf"
    assert provenance["skew"] == 1.3
    assert provenance["write_ratio"] == 0.1


# -- driver determinism and routing ------------------------------------------


def test_streams_are_deterministic_under_fixed_seed():
    """Two binds of the same spec over the same session yield identical
    per-worker operation sequences; a different seed diverges."""
    with build_query_engine() as engine:
        ds = engine.attach(
            "events", tuple(range(128)), kinds=["list-membership"], mutable=True
        )
        spec = WorkloadSpec(
            mix={"list-membership": 1.0},
            write_ratio=0.2,
            distribution=ZipfKeys(1.1),
            seed=SEED,
        )
        stream_a = spec.bind(ds).stream(3)
        stream_b = spec.bind(ds).stream(3)
        ops_a = [next(stream_a) for _ in range(200)]
        ops_b = [next(stream_b) for _ in range(200)]
        assert ops_a == ops_b
        other = WorkloadSpec(
            mix={"list-membership": 1.0},
            write_ratio=0.2,
            distribution=ZipfKeys(1.1),
            seed=SEED + 1,
        )
        ops_c = [next(other.bind(ds).stream(3)) for _ in range(200)]
        assert ops_a != ops_c
        # Distinct workers are decorrelated, not copies of each other.
        ops_w0 = [next(spec.bind(ds).stream(0)) for _ in range(200)]
        assert ops_a != ops_w0


def test_closed_loop_runs_are_deterministic_in_counts():
    """Same spec, same seed: both runs issue the same reads/writes split and
    per-kind operation counts (latency numbers vary, the traffic does not)."""

    def run():
        with build_query_engine() as engine:
            ds = engine.attach(
                "events", tuple(range(256)), kinds=["list-membership"], mutable=True
            )
            spec = WorkloadSpec(
                mix={"list-membership": 1.0}, write_ratio=0.15, seed=SEED
            )
            report = run_closed_loop(ds, spec, threads=3, operations=300)
            return (
                report.reads,
                report.writes,
                {kind: stats.count for kind, stats in report.per_kind.items()},
                ds.version,
            )

    assert run() == run()


def test_closed_loop_routes_writes_through_apply_changes():
    with build_query_engine() as engine:
        ds = engine.attach(
            "events", tuple(range(128)), kinds=["list-membership"], mutable=True
        )
        spec = WorkloadSpec(mix={"list-membership": 1.0}, write_ratio=0.25, seed=3)
        report = run_closed_loop(ds, spec, threads=2, operations=200)
        assert report.reads + report.writes == 200
        assert report.writes > 0
        assert report.errors == {}
        # Applied batches bumped the session version; screened-to-noop
        # batches may not, so the window version never exceeds the writes.
        assert 0 < ds.version <= report.writes
        assert report.stats_window["version"] == ds.version
        window = report.stats_window["kinds"]["list-membership"]
        assert window["delta_batches"] + window["fallback_rebuilds"] > 0


def test_closed_loop_report_is_json_serializable():
    with build_query_engine() as engine:
        ds = engine.attach("events", tuple(range(64)), kinds=["list-membership"])
        spec = WorkloadSpec(mix={"list-membership": 1.0}, seed=1)
        report = run_closed_loop(ds, spec, threads=2, operations=64)
        record = json.loads(json.dumps(report.to_dict()))
        assert record["mode"] == "closed"
        assert record["reads"] == 64
        latency = record["read_latency"]
        assert latency["p50_us"] <= latency["p95_us"] <= latency["p999_us"]
        assert "write_latency" not in record  # read-only run


def test_open_loop_records_offered_vs_achieved_phases():
    with build_query_engine() as engine:
        ds = engine.attach("events", tuple(range(64)), kinds=["list-membership"])
        spec = WorkloadSpec(mix={"list-membership": 1.0}, seed=1)
        report = run_open_loop(
            ds, spec, schedule=[(200.0, 0.2), (400.0, 0.2)], concurrency=2
        )
        assert report.mode == "open"
        assert len(report.phases) == 2
        for phase in report.phases:
            assert phase["completed"] == phase["operations"]
            assert phase["achieved_qps"] > 0
        assert report.errors == {}


def test_open_loop_rejects_bad_schedules():
    with build_query_engine() as engine:
        ds = engine.attach("events", (1, 2), kinds=["list-membership"])
        spec = WorkloadSpec(mix={"list-membership": 1.0})
        with pytest.raises(WorkloadError, match="schedule is empty"):
            run_open_loop(ds, spec, schedule=[])
        with pytest.raises(WorkloadError, match="positive"):
            run_open_loop(ds, spec, schedule=[(0.0, 1.0)])
        with pytest.raises(WorkloadError, match="concurrency"):
            run_open_loop(ds, spec, schedule=[(10.0, 0.1)], concurrency=0)
        with pytest.raises(WorkloadError, match="threads"):
            run_closed_loop(ds, spec, threads=0)
        with pytest.raises(WorkloadError, match="operations"):
            run_closed_loop(ds, spec, operations=0)


# -- the stats surface -------------------------------------------------------


def test_dataset_stats_is_the_sessions_slice():
    with build_query_engine() as engine:
        ds = engine.attach("events", tuple(range(32)), kinds=["list-membership"])
        other = engine.attach(
            "arrays", tuple(range(32)), kinds=["minimum-range-query"]
        )
        ds.query("list-membership", 5)
        other.query("minimum-range-query", (0, 31, 0))
        stats = ds.stats()
        assert stats["dataset"] == "events"
        assert stats["mutable"] is False and stats["version"] == 0
        assert set(stats["kinds"]) == {"list-membership"}  # no other session's kinds
        assert stats["kinds"]["list-membership"]["queries"] >= 1
        assert json.loads(json.dumps(stats)) == stats


def test_engine_stats_snapshot_shape():
    with build_query_engine() as engine:
        ds = engine.attach("events", tuple(range(32)), kinds=["list-membership"])
        ds.query("list-membership", 5)
        snapshot = engine.stats().stats_snapshot()
        assert snapshot["total_queries"] == 1
        assert "hit_rate" in snapshot["cache"]
        membership = snapshot["per_kind"]["list-membership"]
        assert membership["queries"] == 1
        assert 0.0 <= membership["hit_rate"] <= 1.0
        assert json.loads(json.dumps(snapshot)) == snapshot
