"""Integration: Theorem 9's separation, measured.

Under the fixed factorization Upsilon_0 (empty data part), CVP's per-query
cost grows with |q| no matter what preprocessing does; under the proper
Section 4(8) factorization the same instances answer in O(1) after PTIME
preprocessing.  The re-factorization reduction connects the two (Cor. 6).
"""

import random

import pytest

from repro.core import CostTracker, ScalingKind, certify, transfer_scheme, verify_reduction
from repro.queries import (
    cvp_factorized_class,
    cvp_trivial_class,
    gate_table_scheme,
    reevaluate_scheme,
)
from repro.reductions_zoo import refactorize_cvp

SMALL = [2**k for k in range(5, 10)]


def test_upsilon0_cost_grows_with_query_size():
    query_class = cvp_trivial_class()
    scheme = reevaluate_scheme()
    depths = {}
    for scale in (64, 512):
        data, queries = query_class.sample_workload(scale, seed=7, query_count=4)
        preprocessed = scheme.preprocess(data, CostTracker())
        tracker = CostTracker()
        for query in queries:
            scheme.answer(preprocessed, query, tracker)
        depths[scale] = tracker.depth
    assert depths[512] > 5 * depths[64]


def test_upsilon_cvp_cost_constant_in_circuit_size():
    query_class = cvp_factorized_class()
    scheme = gate_table_scheme()
    depths = {}
    for scale in (64, 4096):
        data, queries = query_class.sample_workload(scale, seed=8, query_count=6)
        preprocessed = scheme.preprocess(data, CostTracker())
        tracker = CostTracker()
        for query in queries:
            scheme.answer(preprocessed, query, tracker)
        depths[scale] = tracker.depth
    assert depths[4096] == depths[64]


def test_certificates_separate_the_two_factorizations():
    failing = certify(
        cvp_trivial_class(), reevaluate_scheme(), sizes=SMALL, queries_per_size=6
    )
    passing = certify(
        cvp_factorized_class(), gate_table_scheme(), sizes=SMALL, queries_per_size=6
    )
    assert not failing.is_pi_tractable
    assert failing.evaluation_depth.kind is ScalingKind.POLYNOMIAL
    assert passing.is_pi_tractable


def test_refactorization_restores_tractability():
    # Corollary 6 in action: reduce the trivial class to proper CVP, verify,
    # transfer the gate-table scheme, answer in O(1).
    reduction = refactorize_cvp()
    instances = reduction.source.sample_instances(48, seed=9, count=6)
    assert verify_reduction(reduction, instances, cross_pairs=False) == []

    transferred = transfer_scheme(reduction, gate_table_scheme())
    rng = random.Random(10)
    instance = reduction.source.generate(64, rng)
    data = reduction.source_factorization.pi1(instance)
    query = reduction.source_factorization.pi2(instance)
    preprocessed = transferred.preprocess(data, CostTracker())
    tracker = CostTracker()
    answer = transferred.answer(preprocessed, query, tracker)
    assert answer == reduction.source.member(instance)
    assert tracker.depth <= 3  # O(1) table lookup, not Theta(|q|)
