"""Integration: Figure 2 as a machine-checked consistency property.

Building the registry with full certification and checking containments is
the reproduction of Figure 2: every implemented class lands in the region
the paper assigns it, with measured evidence.
"""

import pytest

from repro.catalog import build_registry
from repro.core import Membership, figure2_report


@pytest.fixture(scope="module")
def registry():
    return build_registry(certify_all=True, queries_per_size=8)


def test_no_containment_violations(registry):
    assert registry.check_containments() == []


def test_every_pit0q_entry_is_certified(registry):
    for entry in registry.with_claim(Membership.PI_T0Q):
        assert any(c.is_pi_tractable for c in entry.certificates), entry.name


def test_separation_witnesses_fail_as_predicted(registry):
    # Figure 1 right side and Theorem 9: certificates exist and fail.
    for name in ("bds-order-trivial", "cvp-trivial"):
        entry = registry.get(name)
        assert entry.certificates, name
        assert not any(c.is_pi_tractable for c in entry.certificates), name
        # Yet both carry the re-factorization evidence for PiTQ membership.
        assert entry.reduction_to_complete is not None


def test_np_complete_entry_has_no_scheme(registry):
    entry = registry.get("vertex-cover")
    assert Membership.NP_COMPLETE in entry.claims
    assert not entry.schemes
    assert Membership.PI_TP not in entry.claims


def test_nc_entries_are_pi_tractable(registry):
    # NC <= PiT0Q: the reachability class claims NC and must be certified.
    entry = registry.get("reachability")
    assert Membership.NC in entry.claims
    assert any(c.is_pi_tractable for c in entry.certificates)


def test_report_lists_every_entry(registry):
    report = figure2_report(registry)
    for entry in registry.entries():
        assert entry.name in report
    assert "consistent" in report
