"""Integration: the empirical certifier (Definition 1, measured end-to-end).

The two directions that make certification meaningful:

* every scheme the paper calls Pi-tractable must PASS;
* the two schemes the paper proves cannot help (Figure 1's Upsilon',
  Theorem 9's Upsilon_0) must FAIL with polynomial evaluation depth.
"""

import pytest

from repro.core import ScalingKind, certify
from repro.core.errors import CertificationError
from repro.queries import (
    bds_query_class,
    bds_trivial_query_class,
    btree_point_scheme,
    cvp_trivial_class,
    fischer_heun_scheme,
    membership_class,
    no_preprocessing_scheme,
    point_selection_class,
    position_index_scheme,
    reevaluate_scheme,
    rmq_class,
    sorted_run_scheme,
)

SIZES = [2**k for k in range(7, 12)]
SMALL = [2**k for k in range(5, 10)]


class TestPositiveCertification:
    def test_point_selection_btree(self):
        certificate = certify(
            point_selection_class(), btree_point_scheme(), sizes=SIZES
        )
        assert certificate.correct
        assert certificate.is_pi_tractable
        assert certificate.evaluation_depth.kind is not ScalingKind.POLYNOMIAL
        # The naive baseline must be visibly polynomial for contrast.
        assert certificate.naive_work is not None
        assert certificate.naive_work.kind is ScalingKind.POLYNOMIAL

    def test_membership_sorted_run(self):
        certificate = certify(membership_class(), sorted_run_scheme(), sizes=SIZES)
        assert certificate.is_pi_tractable
        # Preprocessing is n log n: power-law fit close to 1.
        assert 0.8 < certificate.preprocessing_fit.exponent < 1.6

    def test_rmq_fischer_heun(self):
        certificate = certify(rmq_class(), fischer_heun_scheme(), sizes=SIZES)
        assert certificate.is_pi_tractable
        assert certificate.evaluation_depth.kind is ScalingKind.CONSTANT

    def test_bds_position_index(self):
        certificate = certify(
            bds_query_class(), position_index_scheme(), sizes=SMALL
        )
        assert certificate.is_pi_tractable

    def test_summary_renders(self):
        certificate = certify(membership_class(), sorted_run_scheme(), sizes=SMALL)
        text = certificate.summary()
        assert "Pi-tractable" in text
        assert "preprocessing work" in text


class TestNegativeCertification:
    """The paper's impossibility results, as measured failures."""

    def test_figure1_right_side_fails(self):
        certificate = certify(
            bds_trivial_query_class(),
            no_preprocessing_scheme(),
            sizes=SMALL,
            queries_per_size=6,
        )
        assert certificate.correct  # answers are right...
        assert not certificate.is_pi_tractable  # ...but not in NC
        assert certificate.evaluation_depth.kind is ScalingKind.POLYNOMIAL
        assert certificate.notes  # the failure is called out

    def test_theorem9_upsilon0_fails(self):
        certificate = certify(
            cvp_trivial_class(),
            reevaluate_scheme(),
            sizes=SMALL,
            queries_per_size=6,
        )
        assert certificate.correct
        assert not certificate.is_pi_tractable
        assert certificate.evaluation_depth.kind is ScalingKind.POLYNOMIAL


class TestCertifierValidation:
    def test_too_few_sizes_rejected(self):
        with pytest.raises(CertificationError):
            certify(membership_class(), sorted_run_scheme(), sizes=[64, 128])

    def test_wrong_scheme_fails_correctness(self):
        # A scheme answering the wrong query class must fail `correct`.
        from repro.core import PiScheme

        broken = PiScheme(
            name="always-true",
            preprocess=lambda data, tracker: None,
            evaluate=lambda _, query, tracker: True,
        )
        certificate = certify(membership_class(), broken, sizes=SMALL)
        assert not certificate.correct
        assert not certificate.is_pi_tractable
