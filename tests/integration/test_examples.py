"""Integration: every shipped example runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "social_network_reachability",
        "bds_crawl_ordering",
        "theory_workbench",
    } <= names
