"""Integration: the Section 4 strategies working together end-to-end.

Each test replays one of the paper's prose scenarios across module
boundaries: compression feeding query answering, views replacing base
relations, incremental preprocessing keeping an index live under updates.
"""

import random

import pytest

from repro.compression import LosslessCompressedGraph, ReachabilityPreservingCompression
from repro.core import CostTracker
from repro.graphs import is_reachable, social_digraph
from repro.incremental import (
    ChangeKind,
    IncrementalSelectionIndex,
    IncrementalTransitiveClosure,
    TupleChange,
)
from repro.indexes import TransitiveClosureIndex
from repro.queries import range_selection_class, views_scheme
from repro.storage.relation import uniform_int_relation


class TestCompressionVsLossless:
    """Section 4(5): query-preserving compression answers without
    decompression; lossless pays Theta(|D|) per query."""

    def test_cost_gap(self):
        rng = random.Random(200)
        graph = social_digraph(250, rng)
        preserving = ReachabilityPreservingCompression(graph)
        lossless = LosslessCompressedGraph(graph)

        queries = [(rng.randrange(250), rng.randrange(250)) for _ in range(25)]
        preserving_tracker, lossless_tracker = CostTracker(), CostTracker()
        for u, v in queries:
            expected = is_reachable(graph, u, v)
            assert preserving.reachable(u, v, preserving_tracker) == expected
            assert lossless.reachable(u, v, lossless_tracker) == expected
        assert lossless_tracker.work > 100 * preserving_tracker.work

    def test_compression_composes_with_closure_index(self):
        # Compress first, index the compressed graph: answers survive both.
        rng = random.Random(201)
        graph = social_digraph(120, rng)
        compressed = ReachabilityPreservingCompression(graph)
        index = TransitiveClosureIndex(compressed.compressed)
        for _ in range(200):
            u, v = rng.randrange(120), rng.randrange(120)
            class_u, class_v = compressed.class_of(u), compressed.class_of(v)
            via_index = (
                True
                if compressed.reachable(u, v) and class_u == class_v
                else index.reachable(class_u, class_v)
                if class_u != class_v
                else compressed.reachable(u, v)
            )
            assert compressed.reachable(u, v) == is_reachable(graph, u, v)
            if class_u != class_v:
                assert via_index == is_reachable(graph, u, v)


class TestViewsEndToEnd:
    def test_views_answer_the_generated_workload(self):
        query_class = range_selection_class()
        scheme = views_scheme(bucket_count=8)
        data, queries = query_class.sample_workload(size=600, seed=202, query_count=60)
        preprocessed = scheme.preprocess(data, CostTracker())
        for query in queries:
            assert scheme.answer(preprocessed, query, CostTracker()) == (
                query_class.pair_in_language(data, query)
            )

    def test_view_probe_never_scans_base_relation(self):
        query_class = range_selection_class()
        scheme = views_scheme(bucket_count=8)
        data, _ = query_class.sample_workload(size=2000, seed=203, query_count=1)
        preprocessed = scheme.preprocess(data, CostTracker())
        tracker = CostTracker()
        scheme.answer(preprocessed, ("a", 10, 13), tracker)
        assert tracker.work < len(data) // 10


class TestIncrementalPreprocessing:
    """Section 4(7) + Section 1's incremental-preprocessing remark:
    maintain Pi(D) under dD instead of re-running Pi."""

    def test_index_stays_consistent_with_recomputation(self):
        rng = random.Random(204)
        relation = uniform_int_relation(300, rng, value_range=(0, 120))
        incremental = IncrementalSelectionIndex(relation, "a")
        for step in range(120):
            key = rng.randrange(140)
            incremental.apply(TupleChange(ChangeKind.INSERT, (key, step)))
        # Compare against an index rebuilt from the updated relation.
        rebuilt = IncrementalSelectionIndex(incremental.relation, "a")
        for probe in range(0, 140, 3):
            assert incremental.point_nonempty(probe) == rebuilt.point_nonempty(probe)

    def test_incremental_beats_recompute_for_small_deltas(self):
        closure = IncrementalTransitiveClosure(150)
        rng = random.Random(205)
        for _ in range(200):
            u, v = rng.randrange(150), rng.randrange(150)
            if u != v:
                closure.insert_edge(u, v)
        tracker = CostTracker()
        incremental_cost = closure.insert_edge(0, 149, tracker)
        recompute = closure.recompute_cost()
        assert incremental_cost.work < recompute.work

    def test_boundedness_cost_scales_with_changed_not_data(self):
        # Same |dD| against two very different |D|: incremental cost must be
        # within a modest factor, while rebuild costs diverge ~20x.
        costs = {}
        rebuilds = {}
        for n in (200, 4000):
            rng = random.Random(n)
            relation = uniform_int_relation(n, rng, value_range=(0, 10**9))
            index = IncrementalSelectionIndex(relation, "a")
            tracker = CostTracker()
            batch = [
                TupleChange(ChangeKind.INSERT, (2_000_000_000 + i, 0))
                for i in range(8)
            ]
            costs[n] = index.apply_batch(batch, tracker).work
            rebuilds[n] = IncrementalSelectionIndex.rebuild_cost(
                index.relation, "a"
            ).work
        assert rebuilds[4000] > 15 * rebuilds[200]
        assert costs[4000] < 3 * costs[200]
