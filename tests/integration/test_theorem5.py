"""Integration: Theorem 5 / Corollary 6 -- everything reduces to BDS.

For every decision problem in the catalog's P fragment, build the
solve-and-emit NC-factor reduction to BDS, verify the Definition 4
equivalence on sampled instances, transfer BDS's Pi-scheme back along the
reduction (Lemma 3), and check the transferred scheme answers correctly.
"""

import random

import pytest

from repro.core import CostTracker, compose, transfer_scheme, verify_reduction
from repro.core.language import decision_problem_of
from repro.queries import (
    bds_problem,
    bds_query_class,
    cvp_problem,
    membership_problem,
    position_dict_scheme,
    position_index_scheme,
    rmq_class,
    tree_lca_class,
)
from repro.reductions_zoo import solve_and_emit_bds

PROBLEM_FACTORIES = [
    membership_problem,
    cvp_problem,
    bds_problem,
    lambda: decision_problem_of(rmq_class()),
    lambda: decision_problem_of(tree_lca_class()),
    lambda: decision_problem_of(bds_query_class()),
]


@pytest.mark.parametrize("factory", PROBLEM_FACTORIES, ids=lambda f: getattr(f, "__name__", "lambda"))
def test_every_p_problem_reduces_to_bds(factory):
    problem = factory()
    reduction = solve_and_emit_bds(problem)
    instances = problem.sample_instances(32, seed=100, count=10)
    assert verify_reduction(reduction, instances, cross_pairs=False) == []


@pytest.mark.parametrize("scheme_factory", [position_index_scheme, position_dict_scheme])
def test_lemma3_transfer_answers_through_bds(scheme_factory):
    problem = membership_problem()
    reduction = solve_and_emit_bds(problem)
    transferred = transfer_scheme(reduction, scheme_factory())
    rng = random.Random(101)
    for _ in range(15):
        instance = problem.generate(48, rng)
        # Identity factorization: both parts are the whole instance.
        data = reduction.source_factorization.pi1(instance)
        query = reduction.source_factorization.pi2(instance)
        preprocessed = transferred.preprocess(data, CostTracker())
        assert transferred.answer(preprocessed, query) == problem.member(instance)


def test_transitive_chain_through_bds():
    # Lemma 2 + Theorem 5: membership -> BDS -> BDS composes and stays
    # correct, with the padded factorization handling the re-factorization.
    problem = membership_problem()
    composite = compose(
        solve_and_emit_bds(problem), solve_and_emit_bds(bds_problem())
    )
    instances = problem.sample_instances(40, seed=102, count=8)
    assert verify_reduction(composite, instances, cross_pairs=False) == []
    # The composite still maps instances to correct BDS instances.
    for instance in instances:
        target_instance = composite.map_instance(instance)
        assert composite.target.member(target_instance) == problem.member(instance)


def test_transferred_scheme_cost_is_constant_in_source_size():
    """After transfer, query cost must not grow with source data size.

    The witness graph is constant, so the BDS scheme's evaluation cost is
    O(1) regardless of how big the source instance was -- the degenerate
    but instructive limit of Corollary 6.
    """
    problem = membership_problem()
    reduction = solve_and_emit_bds(problem)
    transferred = transfer_scheme(reduction, position_dict_scheme())
    costs = []
    for size in (32, 256, 2048):
        instance = problem.generate(size, random.Random(size))
        data = reduction.source_factorization.pi1(instance)
        query = reduction.source_factorization.pi2(instance)
        preprocessed = transferred.preprocess(data, CostTracker())
        tracker = CostTracker()
        transferred.answer(preprocessed, query, tracker)
        costs.append(tracker.depth)
    assert costs[0] == costs[1] == costs[2]
