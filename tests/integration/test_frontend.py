"""End-to-end serving-front tests (ISSUE 9): gateway + 2 worker processes.

One module-scoped :class:`ServingFront` (two spawn-start workers over a
shared on-disk store) serves every test here; each test uses its own
dataset names so order does not matter.  The headline assertions:

* the full op surface works over the wire (attach / query / query_batch /
  apply_changes / stats / detach) with answers identical to a local
  engine's,
* remote errors re-raise as their library classes,
* the workload drivers (closed- and open-loop) run unchanged against a
  :class:`RemoteDataset` with zero errors and zero client protocol
  errors -- the satellite-f duck-typing contract.
"""

from __future__ import annotations

import socket
import time

import pytest

from repro.core.errors import DeadlineExceededError, ProtocolError, UnknownDatasetError
from repro.incremental.changes import ChangeKind, TupleChange
from repro.service.frontend import RemoteClient, ServingFront
from repro.workloads import UniformKeys, WorkloadSpec, ZipfKeys, run_closed_loop, run_open_loop


@pytest.fixture(scope="module")
def front(tmp_path_factory):
    root = tmp_path_factory.mktemp("front-store")
    with ServingFront(workers=2, store_root=str(root)) as serving:
        yield serving


@pytest.fixture(scope="module")
def client(front):
    with RemoteClient(*front.address) as remote:
        yield remote


def test_ping_and_full_immutable_surface(client):
    assert client.ping()
    data = tuple(range(128))
    with client.attach("imm", data, kinds=["list-membership", "minimum-range-query"]) as ds:
        assert ds.name == "imm"
        assert set(ds.kinds) == {"list-membership", "minimum-range-query"}
        assert ds.mutable is False
        assert ds.dataset() == data

        assert ds.query("list-membership", 7) is True
        assert ds.query("list-membership", 999) is False
        # RMQ travels as a tagged tuple and answers like the local engine.
        assert ds.query("minimum-range-query", (0, 127, 0)) is True
        answers = ds.query_batch(
            [("list-membership", q) for q in (0, 64, 127, 128, -1)]
        )
        assert answers == [True, True, True, False, False]

        stats = ds.stats()
        # Aggregated over both workers, with the supervision story injected.
        assert stats["frontend"]["workers"] == 2
        assert stats["frontend"]["healthy_workers"] == 2
        assert stats["frontend"]["worker_restarts"] == 0
        assert stats["kinds"]["list-membership"]["queries"] >= 5
    # context exit detached: the name is gone on every worker
    with pytest.raises(UnknownDatasetError):
        client.request("query", dataset="imm",
                       value={"kind": "list-membership", "query": 1})


def test_mutable_dataset_is_homed_and_versioned(client):
    data = tuple(range(64))
    ds = client.attach("mut", data, kinds=["list-membership"], mutable=True)
    assert ds.mutable is True
    assert ds.query("list-membership", 99) is False
    ack = ds.apply_changes([TupleChange(ChangeKind.INSERT, (99,))])
    assert ack["version"] == 1
    assert ack["changed"] == 1
    assert ds.query("list-membership", 99) is True
    ack = ds.apply_changes([TupleChange(ChangeKind.DELETE, (7,))])
    assert ack["version"] == 2
    assert ds.query("list-membership", 7) is False
    stats = ds.stats()
    assert stats["mutable"] is True
    assert stats["version"] == 2
    assert "frontend" in stats
    ds.detach()
    ds.detach()  # idempotent client-side


def test_remote_errors_carry_their_classes(client):
    with pytest.raises(UnknownDatasetError):
        client.request("stats", dataset="never-attached")
    with pytest.raises(ProtocolError, match="unknown op"):
        client.request("reboot", dataset="x")
    # Structured errors do not poison the connection or count as
    # protocol errors client-side... except the unknown op above, which
    # is itself a ProtocolError raised from a *structured* frame.
    assert client.ping()
    assert client.protocol_errors == 0


def test_answers_match_a_local_reference(client):
    data = tuple(range(0, 200, 3))
    reference = set(data)
    with client.attach("ref", data, kinds=["list-membership"]) as ds:
        queries = list(range(-5, 205, 7))
        answers = ds.query_batch([("list-membership", q) for q in queries])
        assert answers == [q in reference for q in queries]


def test_closed_loop_driver_runs_unchanged_remotely(client):
    data = tuple(range(256))
    spec = WorkloadSpec(
        mix={"list-membership": 1.0},
        write_ratio=0.1,
        distribution=ZipfKeys(1.1),
        seed=7,
    )
    with client.attach("wl-closed", data, kinds=["list-membership"],
                       mutable=True) as ds:
        report = run_closed_loop(ds, spec, threads=2, operations=120)
    assert report.errors == {}
    assert report.operations == 120
    assert report.writes >= 1
    assert client.protocol_errors == 0


def test_deadline_travels_the_wire(client):
    """A generous budget never interferes; an impossible one surfaces as a
    typed :class:`DeadlineExceededError` carrying the request identity --
    from whichever layer (gateway, supervisor, worker) shed it first."""
    data = tuple(range(32))
    with client.attach("dl", data, kinds=["list-membership"]) as ds:
        ds.set_deadline(10_000.0)
        assert ds.query("list-membership", 7) is True
        ds.set_deadline(0.001)  # sub-microsecond: expires in flight
        with pytest.raises(DeadlineExceededError) as excinfo:
            ds.query("list-membership", 7)
        assert excinfo.value.op == "query"
        assert excinfo.value.dataset == "dl"
        ds.set_deadline(None)
        assert ds.query("list-membership", 7) is True


def test_client_reconnects_transparently_for_idempotent_reads(front):
    """A broken socket under an idempotent read heals with one transparent
    reconnect (no error, no protocol_errors count); the same break under a
    write fails loudly -- the client cannot know whether it applied."""
    data = tuple(range(16))
    with RemoteClient(*front.address) as remote:
        with remote.attach("reconn", data, kinds=["list-membership"],
                           mutable=True) as ds:
            assert ds.query("list-membership", 3) is True
            remote._local.state[0].shutdown(socket.SHUT_RDWR)
            assert ds.query("list-membership", 3) is True
            assert remote.reconnects == 1
            assert remote.protocol_errors == 0

            remote._local.state[0].shutdown(socket.SHUT_RDWR)
            with pytest.raises(ProtocolError, match="connection"):
                ds.apply_changes([TupleChange(ChangeKind.INSERT, (99,))])
            assert remote.protocol_errors == 1
            # The next call opens a fresh connection and serves normally.
            assert ds.query("list-membership", 3) is True


def test_journal_checkpoints_and_drain_rehomes(tmp_path):
    """Satellite pair on a dedicated front: after N acked write batches the
    supervisor checkpoints the mutable dataset to the shared store and
    truncates its journal; ``drain`` then re-homes the dataset onto the
    sibling worker with every write intact."""
    with ServingFront(workers=2, store_root=str(tmp_path),
                      journal_checkpoint_batches=2) as serving:
        with RemoteClient(*serving.address) as remote:
            ds = remote.attach("mutchk", tuple(range(32)),
                               kinds=["list-membership"], mutable=True)
            for value in range(100, 105):
                ds.apply_changes([TupleChange(ChangeKind.INSERT, (value,))])
            # Checkpointing is asynchronous: wait for the two swaps
            # (batches 1-2 and 3-4; batch 5 stays journaled).
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if serving.supervisor.health()["journal_checkpoints"] >= 2:
                    break
                time.sleep(0.02)
            health = serving.supervisor.health()
            assert health["journal_checkpoints"] >= 2
            assert health["journal_checkpoint_failures"] == 0
            # The checkpoint artifacts landed in the shared store.
            assert any(tmp_path.rglob("*frontend-journal-checkpoint*"))

            # Drain whichever worker homes the dataset; the other drain is
            # a no-op for it.
            report = serving.supervisor.drain(0)
            if "mutchk" not in report["rehomed"]:
                serving.supervisor.undrain(0)
                report = serving.supervisor.drain(1)
            assert "mutchk" in report["rehomed"]
            assert report["drained"] is True
            assert serving.supervisor.health()["drains"] >= 1

            # Post-drain, reads see every pre-drain write and new writes
            # land on the new home.  Note the version counter restarts
            # from the checkpoint baseline after a re-home: batches 1-4
            # were folded into the attach body, batch 5 replayed as v1.
            for value in range(100, 105):
                assert ds.query("list-membership", value) is True
            ack = ds.apply_changes([TupleChange(ChangeKind.INSERT, (200,))])
            assert ack["version"] == 2
            assert ds.query("list-membership", 200) is True


def test_open_loop_driver_runs_unchanged_remotely(client):
    data = tuple(range(256))
    spec = WorkloadSpec(
        mix={"list-membership": 1.0},
        distribution=UniformKeys(),
        seed=3,
    )
    with client.attach("wl-open", data, kinds=["list-membership"]) as ds:
        report = run_open_loop(ds, spec, schedule=[(150.0, 0.4)], concurrency=2)
    assert report.errors == {}
    assert report.operations >= 1
    assert client.protocol_errors == 0
