"""End-to-end serving-front tests (ISSUE 9): gateway + 2 worker processes.

One module-scoped :class:`ServingFront` (two spawn-start workers over a
shared on-disk store) serves every test here; each test uses its own
dataset names so order does not matter.  The headline assertions:

* the full op surface works over the wire (attach / query / query_batch /
  apply_changes / stats / detach) with answers identical to a local
  engine's,
* remote errors re-raise as their library classes,
* the workload drivers (closed- and open-loop) run unchanged against a
  :class:`RemoteDataset` with zero errors and zero client protocol
  errors -- the satellite-f duck-typing contract.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ProtocolError, UnknownDatasetError
from repro.incremental.changes import ChangeKind, TupleChange
from repro.service.frontend import RemoteClient, ServingFront
from repro.workloads import UniformKeys, WorkloadSpec, ZipfKeys, run_closed_loop, run_open_loop


@pytest.fixture(scope="module")
def front(tmp_path_factory):
    root = tmp_path_factory.mktemp("front-store")
    with ServingFront(workers=2, store_root=str(root)) as serving:
        yield serving


@pytest.fixture(scope="module")
def client(front):
    with RemoteClient(*front.address) as remote:
        yield remote


def test_ping_and_full_immutable_surface(client):
    assert client.ping()
    data = tuple(range(128))
    with client.attach("imm", data, kinds=["list-membership", "minimum-range-query"]) as ds:
        assert ds.name == "imm"
        assert set(ds.kinds) == {"list-membership", "minimum-range-query"}
        assert ds.mutable is False
        assert ds.dataset() == data

        assert ds.query("list-membership", 7) is True
        assert ds.query("list-membership", 999) is False
        # RMQ travels as a tagged tuple and answers like the local engine.
        assert ds.query("minimum-range-query", (0, 127, 0)) is True
        answers = ds.query_batch(
            [("list-membership", q) for q in (0, 64, 127, 128, -1)]
        )
        assert answers == [True, True, True, False, False]

        stats = ds.stats()
        # Aggregated over both workers, with the supervision story injected.
        assert stats["frontend"]["workers"] == 2
        assert stats["frontend"]["healthy_workers"] == 2
        assert stats["frontend"]["worker_restarts"] == 0
        assert stats["kinds"]["list-membership"]["queries"] >= 5
    # context exit detached: the name is gone on every worker
    with pytest.raises(UnknownDatasetError):
        client.request("query", dataset="imm",
                       value={"kind": "list-membership", "query": 1})


def test_mutable_dataset_is_homed_and_versioned(client):
    data = tuple(range(64))
    ds = client.attach("mut", data, kinds=["list-membership"], mutable=True)
    assert ds.mutable is True
    assert ds.query("list-membership", 99) is False
    ack = ds.apply_changes([TupleChange(ChangeKind.INSERT, (99,))])
    assert ack["version"] == 1
    assert ack["changed"] == 1
    assert ds.query("list-membership", 99) is True
    ack = ds.apply_changes([TupleChange(ChangeKind.DELETE, (7,))])
    assert ack["version"] == 2
    assert ds.query("list-membership", 7) is False
    stats = ds.stats()
    assert stats["mutable"] is True
    assert stats["version"] == 2
    assert "frontend" in stats
    ds.detach()
    ds.detach()  # idempotent client-side


def test_remote_errors_carry_their_classes(client):
    with pytest.raises(UnknownDatasetError):
        client.request("stats", dataset="never-attached")
    with pytest.raises(ProtocolError, match="unknown op"):
        client.request("reboot", dataset="x")
    # Structured errors do not poison the connection or count as
    # protocol errors client-side... except the unknown op above, which
    # is itself a ProtocolError raised from a *structured* frame.
    assert client.ping()
    assert client.protocol_errors == 0


def test_answers_match_a_local_reference(client):
    data = tuple(range(0, 200, 3))
    reference = set(data)
    with client.attach("ref", data, kinds=["list-membership"]) as ds:
        queries = list(range(-5, 205, 7))
        answers = ds.query_batch([("list-membership", q) for q in queries])
        assert answers == [q in reference for q in queries]


def test_closed_loop_driver_runs_unchanged_remotely(client):
    data = tuple(range(256))
    spec = WorkloadSpec(
        mix={"list-membership": 1.0},
        write_ratio=0.1,
        distribution=ZipfKeys(1.1),
        seed=7,
    )
    with client.attach("wl-closed", data, kinds=["list-membership"],
                       mutable=True) as ds:
        report = run_closed_loop(ds, spec, threads=2, operations=120)
    assert report.errors == {}
    assert report.operations == 120
    assert report.writes >= 1
    assert client.protocol_errors == 0


def test_open_loop_driver_runs_unchanged_remotely(client):
    data = tuple(range(256))
    spec = WorkloadSpec(
        mix={"list-membership": 1.0},
        distribution=UniformKeys(),
        seed=3,
    )
    with client.attach("wl-open", data, kinds=["list-membership"]) as ds:
        report = run_open_loop(ds, spec, schedule=[(150.0, 0.4)], concurrency=2)
    assert report.errors == {}
    assert report.operations >= 1
    assert client.protocol_errors == 0
