"""Shared test configuration: hypothesis profiles.

The ``ci`` profile (selected via ``HYPOTHESIS_PROFILE=ci``, as the GitHub
workflow does) disables the per-example deadline: shared CI runners have
noisy wall-clocks and a deadline flake tells us nothing about correctness.
Local runs keep hypothesis defaults.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_profile = os.environ.get("HYPOTHESIS_PROFILE")
if _profile:
    settings.load_profile(_profile)
