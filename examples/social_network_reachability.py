#!/usr/bin/env python3
"""Social-network reachability: the Section 4 strategies on one workload.

The scenario the paper's Section 4(5) motivates: a social graph queried
heavily for "can user u reach user v?".  This example runs the same query
workload through four regimes --

1. per-query BFS (no preprocessing),
2. query-preserving compression (strategy 5),
3. a precomputed transitive-closure index (Example 3),
4. lossless compression (the contrast: must decompress per query) --

and then keeps the closure index live under new follow-edges with the
bounded incremental algorithm (strategy 7).

Run:  python examples/social_network_reachability.py
"""

import random

from repro.compression import LosslessCompressedGraph, ReachabilityPreservingCompression
from repro.core import CostTracker
from repro.graphs import is_reachable, social_digraph
from repro.incremental import IncrementalTransitiveClosure
from repro.indexes import TransitiveClosureIndex

USERS = 600
QUERIES = 200


def main() -> None:
    rng = random.Random(7)
    graph = social_digraph(USERS, rng)
    print("=" * 72)
    print("Social-network reachability (paper, Example 3 + Section 4(5)/(7))")
    print("=" * 72)
    print(f"\nGraph: {graph.n} users, {graph.edge_count} follow edges")

    queries = [(rng.randrange(USERS), rng.randrange(USERS)) for _ in range(QUERIES)]

    # Regime 1: per-query BFS.
    bfs_tracker = CostTracker()
    bfs_answers = [is_reachable(graph, u, v, bfs_tracker) for u, v in queries]

    # Regime 2: query-preserving compression (Section 4(5)).
    compressed = ReachabilityPreservingCompression(graph)
    qp_tracker = CostTracker()
    qp_answers = [compressed.reachable(u, v, qp_tracker) for u, v in queries]

    # Regime 3: transitive-closure index (Example 3).
    index = TransitiveClosureIndex(graph)
    index_tracker = CostTracker()
    index_answers = [index.reachable(u, v, index_tracker) for u, v in queries]

    # Regime 4: lossless compression -- decompress on every query.
    lossless = LosslessCompressedGraph(graph)
    lossless_tracker = CostTracker()
    lossless_answers = [
        lossless.reachable(u, v, lossless_tracker) for u, v in queries[:20]
    ]

    assert bfs_answers == qp_answers == index_answers
    assert lossless_answers == bfs_answers[:20]

    print(f"\nAll four regimes agree on {QUERIES} queries.  Per-query work:")
    print(f"  per-query BFS              : {bfs_tracker.work // QUERIES:>10,}")
    print(f"  query-preserving compressed: {qp_tracker.work // QUERIES:>10,}")
    print(f"  closure-index lookup       : {index_tracker.work // QUERIES:>10,}")
    print(f"  lossless (decompress+BFS)  : {lossless_tracker.work // 20:>10,}")
    print(
        f"\nCompression: {graph.n}v/{graph.edge_count}e -> "
        f"{compressed.compressed_vertices}v/{compressed.compressed_edges}e "
        f"(ratio {compressed.compression_ratio():.2f}; "
        f"lossless byte ratio {lossless.compression_ratio():.2f} but unqueryable)"
    )

    # Strategy 7: keep reachability live as new follows arrive.  Bounded
    # incremental computation means cost tracks |CHANGED| = |dD| + |dO|,
    # not |D|: follows inside already-connected communities are nearly free,
    # and only genuinely connecting edges pay for the pairs they create.
    print("\nIncremental maintenance under new follow edges (Section 4(7)):")
    incremental = IncrementalTransitiveClosure(USERS)
    for u, v in graph.edges():
        incremental.insert_edge(u, v)

    # Batch A: 50 redundant follows (target already reachable).
    redundant_tracker = CostTracker()
    redundant = 0
    attempts = 0
    while redundant < 50 and attempts < 5000:
        attempts += 1
        u, v = rng.randrange(USERS), rng.randrange(USERS)
        if u != v and incremental.reachable(u, v) and not incremental.graph.has_edge(u, v):
            before = incremental.log.changed
            incremental.insert_edge(u, v, redundant_tracker)
            redundant += 1
    # Batch B: 50 arbitrary follows (some create many new reachable pairs).
    before_changed = incremental.log.changed
    novel_tracker = CostTracker()
    for _ in range(50):
        u, v = rng.randrange(USERS), rng.randrange(USERS)
        if u != v:
            incremental.insert_edge(u, v, novel_tracker)
    novel_changed = incremental.log.changed - before_changed

    recompute = incremental.recompute_cost()
    print(f"  50 redundant follows : {redundant_tracker.work:>12,} ops  (|CHANGED| ~ 50)")
    print(
        f"  50 arbitrary follows : {novel_tracker.work:>12,} ops  "
        f"(|CHANGED| = {novel_changed:,} -- cost tracks the output change)"
    )
    print(f"  recompute from scratch would cost {recompute.work:,} ops *per batch*,")
    print("  even when nothing changed -- boundedness is the win (paper, [35]).")
    assert incremental.agrees_with_recompute()
    print("  incremental closure verified against batch recomputation.")


if __name__ == "__main__":
    main()
