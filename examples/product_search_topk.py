#!/usr/bin/env python3
"""Top-k product search with early termination (paper, Section 8, issue (5)).

Scenario: a product catalog scored on rating and popularity; the storefront
asks "are there k products with weighted score at least theta?" for many
(weights, k, theta) combinations.  The paper's closing section conjectures
that top-k answering with early termination [14] can be made Pi-tractable
"under certain conditions"; this example measures those conditions:

* preprocessing builds per-attribute sorted lists (PTIME, once);
* Fagin's Threshold Algorithm then answers most queries after touching a
  tiny prefix of the lists -- unless the attributes are adversarially
  anti-correlated, in which case TA (instance-optimally) degrades toward a
  full scan.

Run:  python examples/product_search_topk.py
"""

import random

from repro.core import CostTracker
from repro.queries import TopKIndex, topk_class

CATALOG = 50_000


def make_catalog(rng: random.Random, correlated: bool):
    products = []
    for _ in range(CATALOG):
        rating = rng.randint(0, 1000)
        if correlated:
            popularity = min(1000, max(0, rating + rng.randint(-80, 80)))
        else:
            popularity = 1000 - rating
        products.append((rating, popularity))
    return tuple(products)


def main() -> None:
    rng = random.Random(13)
    print("=" * 72)
    print("Top-k with early termination (paper S8(5); Fagin's TA [14])")
    print("=" * 72)

    for label, correlated in (("correlated scores", True), ("anti-correlated scores", False)):
        catalog = make_catalog(rng, correlated)
        index = TopKIndex(catalog)
        total_accesses = 0
        queries = 0
        for _ in range(30):
            weights = (rng.randint(1, 3), rng.randint(1, 3))
            k = rng.randint(1, 10)
            theta = rng.randint(600, sum(weights) * 1000)
            answer, accesses = index.kth_score_at_least(weights, k, theta)
            total_accesses += accesses
            queries += 1
        mean = total_accesses // queries
        print(
            f"\n{label}: {CATALOG:,} products, {queries} queries\n"
            f"  mean sorted accesses per query : {mean:>8,}"
            f"  (full scan would touch {2 * CATALOG:,})\n"
            f"  early-termination saving       : {2 * CATALOG / max(mean, 1):>8,.0f}x"
        )

    # Cross-check TA against the naive evaluator on a smaller catalog.
    query_class = topk_class()
    data, queries = query_class.sample_workload(2_000, seed=5, query_count=50)
    index = TopKIndex(data)
    mismatches = 0
    for weights, k, theta in queries:
        expected = query_class.pair_in_language(data, (weights, k, theta))
        answer, _ = index.kth_score_at_least(weights, k, theta)
        mismatches += answer != expected
    print(f"\nCorrectness cross-check on 50 generated queries: {mismatches} mismatches")
    print(
        "\nVerdict: with preprocessing, top-k is feasible on big data when the\n"
        "scoring attributes cooperate -- the 'certain conditions' of the\n"
        "paper's open issue, made measurable."
    )


if __name__ == "__main__":
    main()
