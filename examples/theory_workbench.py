#!/usr/bin/env python3
"""Theory workbench: the paper's formal machinery, exercised end to end.

Walks through the framework layer by layer:

1. languages of pairs and factorizations (Section 3, Proposition 1);
2. empirical Pi-tractability certification (Definition 1);
3. F-reductions and Lemma 8 transfer (membership -> point -> range);
4. Theorem 5: solve-and-emit reductions into BDS, Lemma 2 composition;
5. Theorem 9: the measured separation between CVP's two factorizations;
6. Figure 2: the full registry containment check.

Run:  python examples/theory_workbench.py
"""

from repro.catalog import build_registry
from repro.core import (
    CostTracker,
    certify,
    compose,
    compose_f,
    figure2_report,
    transfer_scheme_f,
    verify_f_reduction,
    verify_reduction,
)
from repro.queries import (
    btree_range_scheme,
    cvp_factorized_class,
    cvp_trivial_class,
    gate_table_scheme,
    membership_class,
    membership_factorization,
    membership_problem,
    reevaluate_scheme,
    sorted_run_scheme,
)
from repro.reductions_zoo import (
    membership_to_point_selection,
    point_to_range_selection,
    solve_and_emit_bds,
)
from repro.queries import bds_problem

SMALL_SIZES = [2**k for k in range(6, 11)]


def section(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    # 1. Factorizations and Proposition 1.
    section("1. Factorizations (Section 3)")
    problem = membership_problem()
    factorization = membership_factorization()
    instance = problem.sample_instances(32, seed=1, count=1)[0]
    data, query = factorization.split(instance)
    language = factorization.pair_language(problem)
    print(f"instance split into |M|={len(data)} list and query e={query}")
    print(
        "Proposition 1: x in L iff <pi1(x), pi2(x)> in S(L, Upsilon): "
        f"{problem.member(instance)} == {language.member(data, query)}"
    )

    # 2. Certification.
    section("2. Empirical Pi-tractability (Definition 1)")
    certificate = certify(
        membership_class(), sorted_run_scheme(), sizes=SMALL_SIZES, queries_per_size=8
    )
    print(certificate.summary())

    # 3. F-reductions.
    section("3. F-reductions and Lemma 8 (Definition 7)")
    chain = compose_f(membership_to_point_selection(), point_to_range_selection())
    query_class = membership_class()
    data = query_class.generate_data(64, __import__("random").Random(2))
    pairs = [(data, q) for q in query_class.generate_queries(data, __import__("random").Random(3), 10)]
    print(f"composite F-reduction: {chain.name}")
    print(f"violations on 10 pairs: {len(verify_f_reduction(chain, pairs))}")
    transferred = transfer_scheme_f(chain, btree_range_scheme())
    preprocessed = transferred.preprocess(data, CostTracker())
    probe = data[0]
    print(
        f"transferred B+-tree scheme answers membership({probe}) = "
        f"{transferred.answer(preprocessed, probe, CostTracker())} "
        "(a list query answered by a relational range index)"
    )

    # 4. Theorem 5.
    section("4. Theorem 5: everything in P reduces to BDS")
    reduction = solve_and_emit_bds(membership_problem())
    instances = reduction.source.sample_instances(32, seed=4, count=8)
    print(f"{reduction.name}: {len(verify_reduction(reduction, instances, cross_pairs=False))} violations")
    composite = compose(reduction, solve_and_emit_bds(bds_problem()))
    print(
        f"Lemma 2 composite {composite.name}: "
        f"{len(verify_reduction(composite, instances, cross_pairs=False))} violations"
    )

    # 5. Theorem 9.
    section("5. Theorem 9: the separation, measured")
    failing = certify(
        cvp_trivial_class(), reevaluate_scheme(), sizes=SMALL_SIZES, queries_per_size=5
    )
    passing = certify(
        cvp_factorized_class(), gate_table_scheme(), sizes=SMALL_SIZES, queries_per_size=5
    )
    print(f"(CVP, Upsilon_0)  : Pi-tractable={failing.is_pi_tractable}  "
          f"[{failing.evaluation_depth.describe()}]")
    print(f"(CVP, Upsilon_CVP): Pi-tractable={passing.is_pi_tractable}  "
          f"[{passing.evaluation_depth.describe()}]")

    # 6. Figure 2.
    section("6. Figure 2: the registry, fully certified")
    registry = build_registry(certify_all=True, queries_per_size=6)
    print(figure2_report(registry))


if __name__ == "__main__":
    main()
