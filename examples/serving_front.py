#!/usr/bin/env python3
"""The serving front, end to end (ISSUE 9): escape the single process.

Boots the full serving stack -- asyncio TCP gateway, supervisor, two
worker *processes* over one shared artifact store -- and drives it the way
an operator would:

1. attach an immutable dataset (every worker loads the same
   content-addressed artifact) and serve queries and batches over the
   wire;
2. attach a mutable dataset (homed on one worker), apply change batches,
   and read the new versions back;
3. run a mixed 90/10 read/write Zipf workload through the *unchanged*
   closed-loop driver -- `RemoteDataset` duck-types the local session
   surface -- and report the tail;
4. show the supervision story a remote `stats()` carries (`frontend`
   section: worker health, restarts, retries).

The script is also CI's ``frontend-smoke``: it exits non-zero if any
operation errors or if the client counts a single protocol error.

Run:  python examples/serving_front.py
"""

from repro.incremental.changes import ChangeKind, TupleChange
from repro.service import ServingFront, WorkloadSpec, ZipfKeys, run_closed_loop
from repro.service.frontend import RemoteClient

SEED = 20130826
SIZE = 2**14
OPERATIONS = 600
THREADS = 3


def section(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    data = tuple(range(SIZE))
    with ServingFront(workers=2) as front:
        host, port = front.address
        print(f"serving front up on {host}:{port} with 2 worker processes")
        client = RemoteClient(host, port)

        section("1. Immutable dataset: served by every worker")
        ds = client.attach(
            "events", data, kinds=["list-membership", "minimum-range-query"]
        )
        print("membership(7)    ->", ds.query("list-membership", 7))
        print("membership(-1)   ->", ds.query("list-membership", -1))
        batch = [("list-membership", q) for q in (0, SIZE - 1, SIZE)]
        print("batch            ->", ds.query_batch(batch))

        section("2. Mutable dataset: homed, versioned, journaled")
        mut = client.attach(
            "inbox", tuple(range(64)), kinds=["list-membership"], mutable=True
        )
        print("membership(99)   ->", mut.query("list-membership", 99))
        ack = mut.apply_changes([TupleChange(ChangeKind.INSERT, (99,))])
        print("apply_changes    ->", ack)
        print("membership(99)   ->", mut.query("list-membership", 99))
        assert mut.query("list-membership", 99) is True

        section("3. The workload drivers run unchanged against the front")
        spec = WorkloadSpec(
            mix={"list-membership": 3.0, "minimum-range-query": 1.0},
            write_ratio=0.1,
            distribution=ZipfKeys(1.1),
            seed=SEED,
        )
        wl = client.attach(
            "traffic",
            data,
            kinds=["list-membership", "minimum-range-query"],
            mutable=True,
        )
        report = run_closed_loop(
            wl, spec, threads=THREADS, operations=OPERATIONS, warmup=16
        )
        latency = report.read_latency.to_dict()
        print(
            f"{report.operations} ops ({report.reads} reads / "
            f"{report.writes} writes) at {report.achieved_qps:,.0f} qps"
        )
        print(
            "read tail us     ->",
            {k: round(latency[k], 1)
             for k in ("p50_us", "p95_us", "p99_us", "p999_us")},
        )
        print("errors           ->", report.errors)
        assert report.errors == {}, report.errors

        section("4. One stats() call: engine counters + the supervision story")
        stats = wl.stats()
        print("queries served   ->", stats["kinds"]["list-membership"]["queries"])
        print("frontend         ->", stats["frontend"])
        assert stats["frontend"]["healthy_workers"] == 2

        for session in (ds, mut, wl):
            session.detach()
        assert client.protocol_errors == 0, client.protocol_errors
        client.close()
    print()
    print("clean shutdown; zero errors, zero protocol errors")


if __name__ == "__main__":
    main()
