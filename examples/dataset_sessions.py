#!/usr/bin/env python3
"""The dataset-first serving API, end to end (ISSUE 4).

The paper's economics -- preprocess D once, answer many queries in polylog
-- make the *preprocessed dataset* the natural unit of the serving API.
This example walks the `Dataset` session surface:

1. attach a payload once under a stable name; serve several query kinds
   (including a sharded one) through the one session, synchronously and
   asynchronously;
2. the memo cliff the redesign eliminates: cycle more payload-style
   datasets than the engine's identity memo holds and watch the O(|D|)
   re-hash counters climb, while the same traffic through named sessions
   stays at zero;
3. a mutable session: one change batch maintains every served structure
   behind a single snapshot latch (delta hook for RMQ point writes,
   touched-shards rebuild for the sharded membership kind).

Run:  python examples/dataset_sessions.py
"""

import random
import time
import warnings

from repro.catalog import build_query_engine
from repro.incremental.changes import PointWrite
from repro.queries import (
    fischer_heun_scheme,
    membership_class,
    rmq_class,
    sorted_run_scheme,
)
from repro.service import QueryEngine, QueryRequest

SEED = 20130826
SIZE = 2**14
CLIFF_DATASETS = 48  # more live payloads than the default 32-entry memo
CLIFF_ROUNDS = 4


def section(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    section("1. One session, many kinds")
    engine = build_query_engine()
    data, probes = membership_class().sample_workload(SIZE, SEED, 8)
    ds = engine.attach("events", data, shards=4)
    print(f"attached {len(data):,} elements as {ds.name!r}; kinds = {len(ds.kinds)}")

    answers = ds.query_batch([("list-membership", probe) for probe in probes])
    print(f"membership batch  : {answers}")
    argmin = min(range(len(data)), key=lambda i: (data[i], i))
    print(f"rmq (full window) : {ds.query('minimum-range-query', (0, len(data) - 1, argmin))}")
    futures = [ds.submit("list-membership", probe) for probe in probes]
    print(f"async futures     : {[future.result() for future in futures]}")
    assert [future.result() for future in futures] == answers

    membership_stats = ds.stats()["kinds"]["list-membership"]
    print(
        f"shard_builds={membership_stats['shard_builds']} "
        f"builds={membership_stats['builds']} "
        f"fingerprint_rehashes={engine.stats().fingerprint_rehashes}"
    )
    assert engine.stats().fingerprint_rehashes == 0
    engine.close()

    section("2. The memo cliff, measured")
    workloads = [
        membership_class().sample_workload(256, SEED + i, 1)
        for i in range(CLIFF_DATASETS)
    ]

    payload_engine = build_query_engine()  # default fingerprint_memo_size=32
    started = time.perf_counter()
    with warnings.catch_warnings():
        # The payload form is deprecated; this section exercises it on
        # purpose to measure the memo cliff the named form eliminates.
        warnings.simplefilter("ignore", DeprecationWarning)
        for _ in range(CLIFF_ROUNDS):
            for data, queries in workloads:
                payload_engine.execute(
                    QueryRequest("list-membership", data, queries[0])
                )
    payload_seconds = time.perf_counter() - started
    payload_stats = payload_engine.stats()
    payload_engine.close()

    named_engine = build_query_engine()
    for i, (data, _) in enumerate(workloads):
        named_engine.attach(f"d{i}", data, kinds=["list-membership"])
    started = time.perf_counter()
    for _ in range(CLIFF_ROUNDS):
        for i, (_, queries) in enumerate(workloads):
            named_engine.execute(
                QueryRequest("list-membership", dataset=f"d{i}", query=queries[0])
            )
    named_seconds = time.perf_counter() - started
    named_stats = named_engine.stats()
    named_engine.close()

    requests = CLIFF_DATASETS * CLIFF_ROUNDS
    print(
        f"{CLIFF_DATASETS} live datasets through a 32-entry memo, "
        f"{requests} requests each way:"
    )
    print(
        f"  payload requests : {payload_seconds / requests * 1e6:7.1f} us/request  "
        f"re-hashes={payload_stats.fingerprint_rehashes} "
        f"evictions={payload_stats.fingerprint_evictions}"
    )
    print(
        f"  named requests   : {named_seconds / requests * 1e6:7.1f} us/request  "
        f"re-hashes={named_stats.fingerprint_rehashes}"
    )
    assert payload_stats.fingerprint_rehashes >= requests  # every request re-hashed
    assert named_stats.fingerprint_rehashes == 0

    section("3. A mutable session: one batch, every kind")
    engine = QueryEngine()
    engine.register("membership", membership_class(), sorted_run_scheme(), shards=4)
    engine.register("rmq", rmq_class(), fischer_heun_scheme())
    base = tuple(random.Random(SEED).randint(-1000, 1000) for _ in range(SIZE))
    ds = engine.attach("sensor", base, mutable=True)
    ds.warm()

    print(f"v{ds.version}: membership(-2000) = {ds.query('membership', -2000)}")
    ds.apply_changes([PointWrite(1234, -2000)])
    left, right = ds.query_batch([("membership", -2000), ("rmq", (0, SIZE - 1, 1234))])
    print(f"v{ds.version}: membership(-2000) = {left}, rmq argmin@1234 = {right}")
    assert left and right

    session_stats = ds.stats()["kinds"]
    print(
        f"rmq delta_batches={session_stats['rmq']['delta_batches']} "
        f"(PointWrite folded in place); membership "
        f"fallback_rebuilds={session_stats['membership']['fallback_rebuilds']} "
        f"(touched shards rebuilt)"
    )
    assert session_stats["rmq"]["delta_batches"] == 1
    assert session_stats["membership"]["fallback_rebuilds"] == 1
    ds.detach()
    engine.close()
    print("\nall session checks passed")


if __name__ == "__main__":
    main()
