#!/usr/bin/env python3
"""BDS order queries: Figure 1's dichotomy on a crawl-ordering workload.

Scenario: a crawler explores a site graph by breadth-depth search induced
by page ids, and an analytics service answers "was page u fetched before
page v?".  The paper's Figure 1 gives two ways to factor this problem:

* Upsilon_BDS -- the graph is data: crawl once (PTIME preprocessing), keep
  the visit-position index, answer each order query in O(log n);
* Upsilon'   -- nothing is data: every query re-runs the crawl.

This example measures both, then demonstrates Corollary 6: the trivially
factorized class is *made* Pi-tractable by the re-factorization reduction
plus Lemma 3 transfer.

Run:  python examples/bds_crawl_ordering.py
"""

import random

from repro.core import CostTracker, transfer_scheme, verify_reduction
from repro.graphs import breadth_depth_search
from repro.queries import (
    bds_query_class,
    bds_trivial_query_class,
    position_dict_scheme,
    position_index_scheme,
)
from repro.reductions_zoo import refactorize_to_bds

PAGES = 2_000
QUERIES = 100


def main() -> None:
    print("=" * 72)
    print("Breadth-depth search order queries (paper, Examples 2/5, Figure 1)")
    print("=" * 72)

    query_class = bds_query_class()
    site, queries = query_class.sample_workload(PAGES, seed=99, query_count=QUERIES)
    print(f"\nSite graph: {site.n} pages, {site.edge_count} links")
    order = breadth_depth_search(site)
    print(f"Crawl order starts: {order[:12]} ...")

    # Upsilon_BDS: preprocess once, answer by binary search (Example 5).
    scheme = position_index_scheme()
    prep = CostTracker()
    index = scheme.preprocess(site, prep)
    indexed_tracker = CostTracker()
    indexed_answers = [scheme.answer(index, q, indexed_tracker) for q in queries]

    # Upsilon': replay the crawl for every query.
    replay_tracker = CostTracker()
    replay_answers = [query_class.evaluate(site, q, replay_tracker) for q in queries]
    assert indexed_answers == replay_answers

    print(f"\nFigure 1, measured over {QUERIES} order queries:")
    print(f"  Upsilon_BDS: preprocess once ({prep.work:,} ops), then")
    print(f"               {indexed_tracker.work // QUERIES:,} ops/query (binary search)")
    print(f"  Upsilon'   : {replay_tracker.work // QUERIES:,} ops/query (full crawl replay)")
    print(
        f"  gap        : {replay_tracker.work / max(indexed_tracker.work, 1):,.0f}x,"
        " and it grows with the site"
    )

    # Corollary 6: re-factorize the trivial class and transfer the scheme.
    print("\nMaking the trivially-factorized class Pi-tractable (Corollary 6):")
    trivial = bds_trivial_query_class()
    reduction = refactorize_to_bds(trivial)
    instances = reduction.source.sample_instances(256, seed=5, count=8)
    violations = verify_reduction(reduction, instances, cross_pairs=False)
    print(f"  reduction {reduction.name!r}: {len(violations)} violations on 8 instances")

    transferred = transfer_scheme(reduction, position_dict_scheme())
    instance = instances[0]
    data = reduction.source_factorization.pi1(instance)
    query = reduction.source_factorization.pi2(instance)
    preprocessed = transferred.preprocess(data, CostTracker())
    tracker = CostTracker()
    answer = transferred.answer(preprocessed, query, tracker)
    truth = reduction.source.member(instance)
    print(
        f"  transferred scheme answers {answer} (truth {truth}) "
        f"in {tracker.work} ops -- the re-factorization moved the graph into"
    )
    print("  the data part, and preprocessing became possible again.")


if __name__ == "__main__":
    main()
