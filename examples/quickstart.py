#!/usr/bin/env python3
"""Quickstart: Example 1 of the paper, end to end.

Builds a relation, runs the naive scan baseline, preprocesses with a
B+-tree, certifies Pi-tractability empirically, and prints the petabyte
arithmetic from the paper's introduction.

Run:  python examples/quickstart.py
"""

import random

from repro.core import CostTracker, certify
from repro.queries import btree_point_scheme, point_selection_class


def main() -> None:
    print("=" * 72)
    print("Quickstart: point selection with preprocessing (paper, Example 1)")
    print("=" * 72)

    # 1. A database D: one relation with two integer columns.
    query_class = point_selection_class()
    rng = random.Random(42)
    relation = query_class.generate_data(100_000, rng)
    print(f"\nGenerated relation with {len(relation):,} tuples.")

    # 2. A Boolean point-selection query: does any tuple have a = 123456?
    query = ("a", 123_456)

    scan_tracker = CostTracker()
    answer = query_class.evaluate(relation, query, scan_tracker)
    print(f"Naive scan:    answer={answer}, work={scan_tracker.work:,} operations")

    # 3. Preprocess (build B+-trees) once, then probe in O(log n).
    scheme = btree_point_scheme()
    prep_tracker = CostTracker()
    indexes = scheme.preprocess(relation, prep_tracker)
    probe_tracker = CostTracker()
    answer = scheme.answer(indexes, query, probe_tracker)
    print(
        f"B+-tree probe: answer={answer}, work={probe_tracker.work:,} operations "
        f"(preprocessing paid once: {prep_tracker.work:,})"
    )
    print(
        f"Per-query speedup: {scan_tracker.work / max(probe_tracker.work, 1):,.0f}x"
    )

    # 4. Certify Pi-tractability (Definition 1, measured): preprocessing must
    #    be polynomial and online evaluation polylog across a size sweep.
    print("\nCertifying the scheme across a size sweep...")
    certificate = certify(
        query_class,
        scheme,
        sizes=[2**k for k in range(10, 15)],
        queries_per_size=12,
    )
    print(certificate.summary())

    # 5. The paper's opening arithmetic.
    print("\nThe paper's petabyte thought experiment:")
    scan_rate = 6e9  # bytes/second, the fastest-SSD figure the paper cites
    petabyte = 1e15
    seconds = petabyte / scan_rate
    print(f"  linear scan of 1 PB at 6 GB/s : {seconds:,.0f} s = {seconds / 86400:.1f} days")
    print("  B+-tree probe of the same data: ~40 comparisons -- effectively instant")


if __name__ == "__main__":
    main()
