#!/usr/bin/env python3
"""The serving economics, end to end: preprocess once, serve many (ISSUE 1).

The paper's point is that the Pi-structure is built *once* (PTIME) and then
amortized over many polylog queries.  This example makes that concrete with
the service stack:

1. the anti-pattern every earlier example quietly committed: rebuild the
   index for every query (what "no preprocessing infrastructure" costs);
2. the QueryEngine over an ArtifactStore: one cold build, then warm
   batches served from the LRU cache at microseconds per query;
3. a process "restart": a fresh engine over the same store deserializes
   the persisted artifact instead of rebuilding.

Run:  python examples/query_service.py
"""

import statistics
import tempfile
import time
import warnings

from repro.core.cost import CostTracker
from repro.queries import (
    fischer_heun_scheme,
    membership_class,
    rmq_class,
    sorted_run_scheme,
)
from repro.service import ArtifactStore, QueryEngine, QueryRequest

SEED = 20130826
MEMBERSHIP_SIZE = 2**16  # the acceptance-criteria dataset
RMQ_SIZE = 2**14
BATCH_PER_KIND = 128
REBUILD_SAMPLE = 12  # rebuilding per query is so slow we only sample it


def build_engine(store):
    engine = QueryEngine(store=store, cache_entries=16, max_workers=4)
    engine.register("list-membership", membership_class(), sorted_run_scheme())
    engine.register("minimum-range-query", rmq_class(), fischer_heun_scheme())
    return engine


def workloads():
    membership = membership_class().sample_workload(MEMBERSHIP_SIZE, SEED, BATCH_PER_KIND)
    rmq = rmq_class().sample_workload(RMQ_SIZE, SEED, BATCH_PER_KIND)
    return [("list-membership", membership), ("minimum-range-query", rmq)]


def main() -> None:
    print("=" * 72)
    print("Preprocess once, serve many: ArtifactStore + QueryEngine")
    print("=" * 72)
    print(
        f"\nDatasets: {MEMBERSHIP_SIZE:,}-element list (membership), "
        f"{RMQ_SIZE:,}-element array (RMQ); {BATCH_PER_KIND} queries each.\n"
    )

    kinds = workloads()
    with warnings.catch_warnings():
        # This example predates named sessions and demonstrates the raw
        # payload form on purpose; see examples/dataset_sessions.py for
        # the supported engine.attach(...) surface.
        warnings.simplefilter("ignore", DeprecationWarning)
        requests = [
            QueryRequest(kind, data, query)
            for kind, (data, queries) in kinds
            for query in queries
        ]

    # 1. The rebuild-per-query anti-pattern, sampled.
    rebuild_schemes = {
        "list-membership": sorted_run_scheme(),
        "minimum-range-query": fischer_heun_scheme(),
    }
    rebuild_latencies = []
    rebuild_answers = {}
    for kind, (data, queries) in kinds:
        scheme = rebuild_schemes[kind]
        for query in queries[:REBUILD_SAMPLE]:
            started = time.perf_counter()
            structure = scheme.preprocess(data, CostTracker())
            answer = scheme.answer(structure, query)
            rebuild_latencies.append(time.perf_counter() - started)
            rebuild_answers[(kind, query)] = answer
    rebuild_per_query = statistics.mean(rebuild_latencies)
    print(f"rebuild-per-query : {rebuild_per_query * 1e3:9.2f} ms/query  (sampled on {len(rebuild_latencies)} queries)")

    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root)

        # 2. Cold batch (pays each build once), then warm batch.
        with build_engine(store) as engine:
            started = time.perf_counter()
            cold_answers = engine.execute_batch(requests)
            cold_seconds = time.perf_counter() - started
            started = time.perf_counter()
            warm_answers = engine.execute_batch(requests)
            warm_seconds = time.perf_counter() - started
            stats = engine.stats()

        warm_per_query = warm_seconds / len(requests)
        print(f"cold batch        : {cold_seconds / len(requests) * 1e3:9.2f} ms/query  (builds amortized over {len(requests)} queries)")
        print(f"warm batch        : {warm_per_query * 1e3:9.2f} ms/query  ({len(requests) / warm_seconds:,.0f} queries/s)")

        # 3. Restart: fresh process image, same store.
        with build_engine(store) as engine:
            started = time.perf_counter()
            restart_answers = engine.execute_batch(requests)
            restart_seconds = time.perf_counter() - started
            restart_stats = engine.stats()
        print(f"restart batch     : {restart_seconds / len(requests) * 1e3:9.2f} ms/query  (artifacts loaded, zero rebuilds)")

        # Correctness: every path agrees, including with the rebuild baseline.
        assert cold_answers == warm_answers == restart_answers
        for position, request in enumerate(requests):
            expected = rebuild_answers.get((request.kind, request.query))
            if expected is not None:
                assert cold_answers[position] == expected
        restart_snapshot = restart_stats.stats_snapshot()
        assert sum(s["builds"] for s in restart_snapshot["per_kind"].values()) == 0

        print("\nPer-scheme serving statistics (first engine):")
        for kind, s in stats.stats_snapshot()["per_kind"].items():
            print(
                f"  {kind:22s} scheme={s['scheme']:14s} queries={s['queries']:4d} "
                f"builds={s['builds']} hit_rate={s['hit_rate']:5.1%} "
                f"build={s['build_seconds'] * 1e3:7.1f}ms "
                f"serve={s['serve_seconds'] * 1e3:7.1f}ms"
            )

        speedup = rebuild_per_query / warm_per_query
        print(
            f"\nWarm-cache serving vs per-query rebuild: {speedup:,.0f}x faster "
            f"({rebuild_per_query * 1e3:.2f} ms -> {warm_per_query * 1e6:.0f} us per query)"
        )
        assert speedup >= 10, f"expected >= 10x, measured {speedup:.1f}x"
        print("acceptance check: >= 10x speedup on a 2^16-element dataset -- PASS")


if __name__ == "__main__":
    main()
