"""Setup shim for offline editable installs.

The canonical metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-use-pep517`` works in environments without the
``wheel`` package (PEP 660 editable installs need it, the legacy path does
not).
"""

from setuptools import setup

setup()
